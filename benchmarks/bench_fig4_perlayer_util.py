"""Figure 4: EfficientNet-B7 per-layer utilization (fraction of peak FLOPS) on TPU-v3."""

from conftest import report

from repro.analysis.bottleneck import per_layer_utilization
from repro.core.designs import TPU_V3


def test_fig4_per_layer_utilization_on_tpu(benchmark):
    values = benchmark(per_layer_utilization, "efficientnet-b7", TPU_V3)

    lines = ["layer_index  utilization"]
    lines.extend(f"{i:11d}  {v:.3f}" for i, v in enumerate(values))
    overall = sum(values) / len(values)
    lines.append(f"mean matrix-layer utilization: {overall:.3f} (paper: overall 0.148)")
    report("fig4_perlayer_util_tpu", "\n".join(lines))

    assert len(values) > 50
    # Early layers (few channels) run at low utilization; later layers improve.
    early = sum(values[:15]) / 15
    late = sum(values[-30:]) / 30
    assert early < late
    # Overall utilization on TPU-v3 is poor (paper: 14.8%).
    assert overall < 0.45
    # No layer reaches the 0.7 "good utilization" bar cited in the paper text
    # for more than a minority of early layers.
    assert min(values) < 0.1
