"""Tests for the array-backend seam, EngineSpec, and trial-batched mapping.

Three contracts:

* The NumPy trial-batched engine is *bit-for-bit* equal to the graph-batched
  engine and the scalar reference — same op costs, same simulation results,
  same search histories — across workloads and random datapaths.
* :class:`~repro.simulator.enginespec.EngineSpec` is the single source of
  truth for engine selection: its grammar parses, its canonical string
  round-trips, the legacy CLI flags fold onto it with a deprecation warning,
  and it expands to / recovers from ``SimulationOptions`` losslessly.
* A float-divergent, unverified backend can never poison shared caches:
  mapping cache keys and problem fingerprints grow a distinguishing tag
  until :func:`~repro.mapping.backend.assert_backend_equivalence` passes.
"""

from __future__ import annotations

import argparse

import numpy as np
import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace
from repro.mapping import backend as backend_mod
from repro.mapping.backend import (
    BackendUnavailableError,
    assert_backend_equivalence,
    backend_available,
    backend_cache_tag,
    backend_verified,
    check_backend,
    get_backend,
)
from repro.mapping.mapper import Mapper, MapperOptions
from repro.reporting.serialization import (
    simulation_options_from_dict,
    simulation_options_to_dict,
    trial_metrics_to_dict,
)
from repro.runtime import ParallelExecutor
from repro.runtime.cache import problem_fingerprint
from repro.runtime.opcache import RegionCostCache, reset_op_caches
from repro.simulator.engine import SimulationOptions
from repro.simulator.enginespec import DEFAULT_ENGINE, MAPPER_MODES, EngineSpec
from repro.workloads.ops import is_matrix_op
from repro.workloads.registry import available_workloads, build_workload


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_op_caches()
    yield
    reset_op_caches()


def _random_configs(count: int, seed: int = 11):
    space = DatapathSearchSpace()
    rng = np.random.default_rng(seed)
    configs = []
    while len(configs) < count:
        params = {
            spec.name: spec.choices[int(rng.integers(len(spec.choices)))]
            for spec in space.specs
        }
        try:
            configs.append(space.to_config(params))
        except Exception:
            continue
    return configs


def _matrix_ops(graph):
    return [op for op in graph.ops if is_matrix_op(op.op_type)]


# ---------------------------------------------------------------------------
class TestEngineSpec:
    def test_default(self):
        spec = EngineSpec()
        assert spec.mapper == "graph-batched"
        assert spec.backend == "numpy"
        assert spec.op_cache and spec.region_cache
        assert spec == DEFAULT_ENGINE
        assert str(spec) == "graph-batched"

    @pytest.mark.parametrize("mapper", MAPPER_MODES)
    def test_parse_bare_mapper(self, mapper):
        assert EngineSpec.parse(mapper).mapper == mapper

    def test_parse_options(self):
        spec = EngineSpec.parse("trial-batched:backend=torch,op_cache=off")
        assert spec.mapper == "trial-batched"
        assert spec.backend == "torch"
        assert spec.op_cache is False
        assert spec.region_cache is True

    def test_parse_bare_options_default_mapper(self):
        spec = EngineSpec.parse("backend=cupy,region_cache=no")
        assert spec.mapper == "graph-batched"
        assert spec.backend == "cupy"
        assert spec.region_cache is False

    def test_parse_empty_is_default(self):
        assert EngineSpec.parse("") == EngineSpec()
        assert EngineSpec.parse("  ") == EngineSpec()

    def test_parse_dash_keys_and_bool_words(self):
        spec = EngineSpec.parse("graph-batched:op-cache=0,region-cache=true")
        assert spec.op_cache is False and spec.region_cache is True

    @pytest.mark.parametrize(
        "text",
        [
            "warp-speed",
            "graph-batched:backend=fortran",
            "graph-batched:op_cache=maybe",
            "graph-batched:flux_capacitor=on",
            "graph-batched:op_cache",
            "scalar:backend=torch",
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            EngineSpec.parse(text)

    @pytest.mark.parametrize(
        "spec",
        [
            EngineSpec(),
            EngineSpec(mapper="scalar"),
            EngineSpec(mapper="vectorized", op_cache=False),
            EngineSpec(mapper="trial-batched", backend="torch"),
            EngineSpec(backend="cupy", op_cache=False, region_cache=False),
        ],
    )
    def test_str_round_trips(self, spec):
        assert EngineSpec.parse(str(spec)) == spec

    @pytest.mark.parametrize("mapper", MAPPER_MODES)
    def test_simulation_options_round_trip(self, mapper):
        spec = EngineSpec(mapper=mapper, op_cache=(mapper != "scalar"))
        options = spec.to_simulation_options(fusion_solver="greedy")
        assert EngineSpec.from_simulation_options(options) == spec

    def test_from_simulation_options_defaults(self):
        # None-valued engine fields resolve exactly like the Simulator does.
        assert EngineSpec.from_simulation_options(
            SimulationOptions(fusion_solver="greedy")
        ) == EngineSpec()
        assert (
            EngineSpec.from_simulation_options(
                SimulationOptions(fusion_solver="greedy", vectorized_mapper=False)
            ).mapper
            == "scalar"
        )

    def test_from_simulation_options_mapper_options_backend(self):
        options = SimulationOptions(
            fusion_solver="greedy",
            mapper_options=MapperOptions(backend="torch"),
        )
        assert EngineSpec.from_simulation_options(options).backend == "torch"

    def test_serialization_preserves_engine_fields(self):
        spec = EngineSpec(mapper="trial-batched", backend="torch", op_cache=False)
        options = spec.to_simulation_options(fusion_solver="greedy")
        rebuilt = simulation_options_from_dict(simulation_options_to_dict(options))
        assert EngineSpec.from_simulation_options(rebuilt) == spec


class TestLegacyFlagAliases:
    def _args(self, **overrides):
        defaults = dict(
            engine=None,
            scalar_mapper=False,
            per_op_mapper=False,
            no_op_cache=False,
            no_region_cache=False,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_legacy_flags_fold_onto_spec(self):
        from repro.cli import _resolve_engine

        assert _resolve_engine(self._args()) == EngineSpec()
        assert _resolve_engine(self._args(scalar_mapper=True)).mapper == "scalar"
        assert _resolve_engine(self._args(per_op_mapper=True)).mapper == "vectorized"
        spec = _resolve_engine(self._args(no_op_cache=True, no_region_cache=True))
        assert spec.op_cache is False and spec.region_cache is False
        # --scalar-mapper wins over --per-op-mapper, like the old wiring.
        assert (
            _resolve_engine(
                self._args(scalar_mapper=True, per_op_mapper=True)
            ).mapper
            == "scalar"
        )

    def test_legacy_flags_override_engine_spec(self):
        from repro.cli import _resolve_engine

        spec = _resolve_engine(
            self._args(engine="trial-batched", no_op_cache=True)
        )
        assert spec.mapper == "trial-batched" and spec.op_cache is False

    def test_deprecation_warns_once_per_process(self, capsys):
        import repro.cli as cli

        cli._LEGACY_FLAG_WARNED.discard("--no-op-cache")
        cli._resolve_engine(self._args(no_op_cache=True))
        first = capsys.readouterr().err
        assert "--no-op-cache is deprecated" in first
        cli._resolve_engine(self._args(no_op_cache=True))
        assert "--no-op-cache" not in capsys.readouterr().err


# ---------------------------------------------------------------------------
class TestBackendRegistry:
    def test_numpy_always_available_and_exact(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert backend.bitwise_exact
        assert backend_available("numpy")
        assert backend_verified("numpy")
        assert backend_cache_tag("numpy") is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("fortran")

    def test_missing_library_is_unavailable_not_fatal(self):
        for name in ("cupy", "torch"):
            if not backend_available(name):
                with pytest.raises(BackendUnavailableError):
                    get_backend(name)
                assert check_backend(name)["status"] == "skipped"

    def test_numpy_equivalence_check_is_exact(self):
        summary = assert_backend_equivalence("numpy")
        assert summary["max_rel_err"] == 0.0
        assert summary["candidates"] > 0

    def test_unverified_backend_gets_cache_tag(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_VERIFIED", set())
        assert backend_cache_tag("torch") == "backend:torch"
        backend_mod.mark_backend_verified("torch")
        assert backend_cache_tag("torch") is None

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_installed_backends_match_within_tolerance(self, name):
        pytest.importorskip(name)
        summary = assert_backend_equivalence(name, rtol=1e-9, atol=0.0)
        assert summary["candidates"] > 0
        assert backend_verified(name)


class TestBackendCachePoisoning:
    def test_mapping_key_segregates_unverified_backend(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_VERIFIED", set())
        config = DatapathConfig()
        numpy_key = Mapper(config).mapping_config_key()
        torch_key = Mapper(
            config, options=MapperOptions(backend="torch")
        ).mapping_config_key()
        assert torch_key != numpy_key
        assert torch_key == numpy_key + ("backend:torch",)
        # Once verified, a fresh mapper shares the NumPy cache universe.
        backend_mod.mark_backend_verified("torch")
        assert (
            Mapper(config, options=MapperOptions(backend="torch")).mapping_config_key()
            == numpy_key
        )

    def test_problem_fingerprint_segregates_unverified_backend(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "_VERIFIED", set())
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)

        def fingerprint(**options):
            evaluator = TrialEvaluator(
                problem,
                simulation_options=SimulationOptions(
                    fusion_solver="greedy", **options
                ),
            )
            return problem_fingerprint(problem, evaluator)

        reference = fingerprint()
        # NumPy engine permutations share trial caches / checkpoints.
        assert fingerprint(trial_batched_mapper=True) == reference
        assert fingerprint(vectorized_mapper=False) == reference
        # An unverified float-divergent backend gets its own universe...
        assert fingerprint(backend="torch") != reference
        # ...until the tolerance check passes in this process.
        backend_mod.mark_backend_verified("torch")
        assert fingerprint(backend="torch") == reference


# ---------------------------------------------------------------------------
class TestRegionCachePeek:
    def test_peek_does_not_count_or_touch_lru(self):
        cache = RegionCostCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.peek(("a",)) == 1
        assert cache.peek(("missing",)) is None
        # No hit/miss accounting from peeks...
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        # ...and no LRU refresh: "a" is still the eviction victim.
        cache.put(("c",), 3)
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) == 2


# ---------------------------------------------------------------------------
class TestTrialBatchedEquivalence:
    def _trial_entries(self, config, graphs):
        mapper = Mapper(config)
        return [(mapper, _matrix_ops(graph), graph.tensors) for graph in graphs]

    def test_map_trials_batch_equals_scalar_random_configs(self):
        graphs = [
            build_workload(name, batch_size=1)
            for name in sorted(available_workloads())
        ]
        for config in _random_configs(3, seed=29):
            entries = [
                (Mapper(config), _matrix_ops(graph), graph.tensors)
                for graph in graphs
            ]
            batched = Mapper.map_trials_batch(entries)
            scalar = Mapper(config, options=MapperOptions(vectorize=False))
            for graph, costs in zip(graphs, batched):
                for op in _matrix_ops(graph):
                    assert costs[op.name] == scalar.map_op(
                        op, graph.tensors
                    ), (op.name,)

    def test_map_trials_batch_mixed_configs_one_pass(self):
        graph = build_workload("efficientnet-b0", batch_size=1)
        ops = _matrix_ops(graph)
        configs = _random_configs(3, seed=31)
        entries = [(Mapper(config), ops, graph.tensors) for config in configs]
        batched = Mapper.map_trials_batch(entries)
        for config, costs in zip(configs, batched):
            per_trial = Mapper(config).map_ops_batch(ops, graph.tensors)
            assert costs == per_trial

    def _history(self, workload, **engine_fields):
        problem = SearchProblem([workload], ObjectiveKind.PERF_PER_TDP)
        spec = EngineSpec(**engine_fields)
        evaluator = TrialEvaluator(
            problem,
            simulation_options=spec.to_simulation_options(fusion_solver="greedy"),
        )
        search = FASTSearch(problem, optimizer="lcs", seed=3, evaluator=evaluator)
        result = search.run(num_trials=8, batch_size=4)
        return [trial_metrics_to_dict(m) for m in result.history], result

    @pytest.mark.parametrize("workload", sorted(available_workloads()))
    def test_search_history_identical_across_engines(self, workload):
        reference, _ = self._history(
            workload, mapper="scalar", op_cache=False, region_cache=False
        )
        reset_op_caches()
        graph_batched, _ = self._history(workload, mapper="graph-batched")
        reset_op_caches()
        trial_batched, result = self._history(workload, mapper="trial-batched")
        assert graph_batched == reference
        assert trial_batched == reference
        assert result.runtime.engine == "trial-batched"

    def test_trial_batched_engine_echo_from_parallel_workers(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        spec = EngineSpec(mapper="trial-batched")
        evaluator = TrialEvaluator(
            problem,
            simulation_options=spec.to_simulation_options(fusion_solver="greedy"),
        )
        serial, _ = self._history("efficientnet-b0", mapper="trial-batched")
        reset_op_caches()
        with ParallelExecutor(num_workers=2) as executor:
            search = FASTSearch(
                problem, optimizer="lcs", seed=3,
                evaluator=evaluator, executor=executor,
            )
            result = search.run(num_trials=8, batch_size=4)
            counters = executor.runtime_counters()
        # The workers themselves report the engine they resolved — proof the
        # pool inherited the parent's spec rather than a silent default.
        assert counters["engine"] == "trial-batched"
        assert result.runtime.engine == "trial-batched"
        assert [trial_metrics_to_dict(m) for m in result.history] == serial

    def test_evaluate_params_batch_falls_back_without_trial_batching(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        evaluator = TrialEvaluator(
            problem,
            simulation_options=SimulationOptions(fusion_solver="greedy"),
        )
        space = DatapathSearchSpace()
        rng = np.random.default_rng(7)
        params = [
            {
                spec.name: spec.choices[int(rng.integers(len(spec.choices)))]
                for spec in space.specs
            }
            for _ in range(3)
        ]
        batch = evaluator.evaluate_params_batch(params, space)
        per_trial = [evaluator.evaluate_params(p, space) for p in params]
        assert [trial_metrics_to_dict(m) for m in batch] == [
            trial_metrics_to_dict(m) for m in per_trial
        ]
