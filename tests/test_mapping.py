"""Tests for the mapping engine: problem extraction, dataflows, tiling, padding, mapper."""

import pytest

from repro.hardware.datapath import DatapathConfig
from repro.mapping.costmodel import OpCost
from repro.mapping.dataflow import Dataflow, spatial_mapping
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.mapper import Mapper
from repro.mapping.padding import pad_problem
from repro.mapping.tiling import Tiling, candidate_tilings, estimate_traffic
from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import Operation, Tensor, TensorKind
from repro.workloads.ops import OpType


def build_conv_graph(batch=1, size=16, in_ch=32, out_ch=64, kernel=3, depthwise=False):
    builder = GraphBuilder("g", batch_size=batch)
    x = builder.input("x", (batch, size, size, in_ch))
    if depthwise:
        builder.depthwise_conv2d(x, (kernel, kernel), name="op")
    else:
        builder.conv2d(x, out_ch, (kernel, kernel), name="op")
    return builder.graph


def problem_of(graph):
    return extract_problem(graph.op("op"), graph.tensors)


class TestProblemExtraction:
    def test_conv2d_dimensions(self):
        graph = build_conv_graph(batch=2, size=16, in_ch=32, out_ch=64, kernel=3)
        problem = problem_of(graph)
        assert problem.m == 2 * 16 * 16
        assert problem.n == 64
        assert problem.k == 32 * 9
        assert problem.stationary_is_weight
        assert not problem.is_depthwise

    def test_depthwise_dimensions(self):
        graph = build_conv_graph(batch=1, size=16, in_ch=32, kernel=3, depthwise=True)
        problem = problem_of(graph)
        assert problem.k == 9
        assert problem.n == 32
        assert problem.is_depthwise

    def test_matmul_dimensions(self):
        builder = GraphBuilder("g", batch_size=4)
        x = builder.input("x", (4, 128))
        builder.matmul(x, 256, name="op")
        problem = problem_of(builder.graph)
        assert (problem.m, problem.n, problem.k) == (4, 256, 128)

    def test_einsum_instances_and_not_weight_stationary(self):
        builder = GraphBuilder("g", batch_size=2)
        q = builder.input("q", (2, 8, 64, 32))
        k = builder.activation_tensor("k", (2, 8, 64, 32))
        builder.einsum(q, k, (2, 8, 64, 64), contracting_dim=32, name="op")
        problem = problem_of(builder.graph)
        assert problem.instances == 16
        assert problem.m == 64 and problem.n == 64 and problem.k == 32
        assert not problem.stationary_is_weight

    def test_flops_match_op_flops(self):
        graph = build_conv_graph()
        problem = problem_of(graph)
        assert problem.flops == graph.op("op").flops(graph.tensors)

    def test_vector_op_rejected(self):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 8))
        builder.softmax(x, name="op")
        with pytest.raises(ValueError):
            problem_of(builder.graph)

    def test_operational_intensity_positive(self):
        problem = problem_of(build_conv_graph())
        assert problem.operational_intensity > 0


class TestSpatialMapping:
    def _problem(self, m=1024, n=256, k=256, depthwise=False, instances=1, weight=True):
        return MatrixProblem(
            m=m, n=n, k=k, instances=instances,
            stationary_is_weight=weight, is_depthwise=depthwise,
            input_bytes=m * k * 2, stationary_bytes=k * n * 2, output_bytes=m * n * 2,
        )

    def test_full_utilization_when_dims_divide(self):
        mapping = spatial_mapping(self._problem(m=100000, n=256, k=256), 128, 128)
        assert mapping.quantization_efficiency == pytest.approx(1.0)
        assert mapping.utilization > 0.9

    def test_partial_tiles_lower_utilization(self):
        aligned = spatial_mapping(self._problem(n=256, k=256), 128, 128)
        ragged = spatial_mapping(self._problem(n=257, k=256), 128, 128)
        assert ragged.quantization_efficiency < aligned.quantization_efficiency

    def test_small_reduction_dim_limits_utilization(self):
        """Section 3.2: few input features waste most of the array rows."""
        mapping = spatial_mapping(self._problem(k=27), 128, 128)
        assert mapping.quantization_efficiency < 27 / 128 + 0.01

    def test_depthwise_far_worse_on_large_arrays(self):
        """Table 5 / Section 4.2: depthwise utilization collapses on 128-wide arrays."""
        dw = self._problem(m=50000, n=512, k=9, depthwise=True)
        on_128 = spatial_mapping(dw, 128, 128)
        on_32 = spatial_mapping(dw, 32, 32)
        assert on_128.utilization < 0.02
        assert on_32.utilization > 0.1
        assert on_32.utilization > 5 * on_128.utilization

    def test_short_streams_pay_latch_overhead(self):
        """Section 4.3: activation x activation matmuls cannot amortize latching."""
        long_stream = spatial_mapping(self._problem(m=8192), 128, 128)
        short_stream = spatial_mapping(self._problem(m=128), 128, 128)
        assert short_stream.latch_efficiency < long_stream.latch_efficiency

    def test_output_stationary_swaps_roles(self):
        problem = self._problem(m=64, n=256, k=4096)
        ws = spatial_mapping(problem, 128, 128, Dataflow.WEIGHT_STATIONARY)
        os = spatial_mapping(problem, 128, 128, Dataflow.OUTPUT_STATIONARY)
        assert os.dataflow is Dataflow.OUTPUT_STATIONARY
        assert os.cycles_per_instance != ws.cycles_per_instance

    def test_utilization_bounded_by_one(self):
        mapping = spatial_mapping(self._problem(m=10**6, n=1024, k=1024), 8, 8)
        assert 0 < mapping.utilization <= 1.0


class TestTilingAndTraffic:
    def _problem(self, m=4096, n=512, k=512):
        return MatrixProblem(
            m=m, n=n, k=k, instances=1, stationary_is_weight=True, is_depthwise=False,
            input_bytes=m * k * 2, stationary_bytes=k * n * 2, output_bytes=m * n * 2,
        )

    def test_candidates_respect_limit(self):
        problem = self._problem()
        candidates = list(candidate_tilings(problem, 32, 32, max_candidates=10))
        assert 1 <= len(candidates) <= 10

    def test_full_problem_tiling_included(self):
        problem = self._problem(m=256, n=64, k=64)
        tilings = list(candidate_tilings(problem, 32, 32))
        assert any(t.m_tile == 256 and t.n_tile == 64 and t.k_tile == 64 for t in tilings)

    def test_buffer_bytes_formula(self):
        tiling = Tiling(m_tile=64, n_tile=32, k_tile=16)
        assert tiling.buffer_bytes(2) == (64 * 16 + 16 * 32 + 64 * 32) * 2

    def test_ample_capacity_gives_minimum_traffic(self):
        problem = self._problem()
        tiling = Tiling(problem.m, problem.n, problem.k)
        traffic, fits = estimate_traffic(problem, tiling, blocking_capacity_bytes=1 << 30)
        assert fits
        assert traffic.total_bytes == pytest.approx(problem.total_bytes)

    def test_tiny_capacity_amplifies_traffic(self):
        problem = self._problem()
        tiling = Tiling(128, 64, 64)
        small_capacity = tiling.buffer_bytes(2) + 1024
        traffic, fits = estimate_traffic(problem, tiling, small_capacity)
        assert fits
        assert traffic.total_bytes > problem.total_bytes

    def test_oversized_tiling_does_not_fit(self):
        problem = self._problem()
        tiling = Tiling(problem.m, problem.n, problem.k)
        _, fits = estimate_traffic(problem, tiling, blocking_capacity_bytes=1024)
        assert not fits

    def test_depthwise_never_rereads_input(self):
        problem = MatrixProblem(
            m=100000, n=1024, k=9, instances=1, stationary_is_weight=True, is_depthwise=True,
            input_bytes=100000 * 9 * 2, stationary_bytes=9 * 1024 * 2, output_bytes=100000 * 1024 * 2,
        )
        tiling = Tiling(1024, 32, 9)
        traffic, _ = estimate_traffic(problem, tiling, blocking_capacity_bytes=256 * 1024)
        assert traffic.input_bytes == pytest.approx(problem.input_bytes)


class TestPadding:
    def _problem(self, n, k, depthwise=False):
        return MatrixProblem(
            m=1024, n=n, k=k, instances=1, stationary_is_weight=True, is_depthwise=depthwise,
            input_bytes=1024 * k * 2, stationary_bytes=k * n * 2, output_bytes=1024 * n * 2,
        )

    def test_no_padding_when_aligned(self):
        decision = pad_problem(self._problem(n=256, k=128), 32, 32)
        assert not decision.padded_n and not decision.padded_k
        assert decision.extra_flops == 0

    def test_pads_cheap_ragged_dims(self):
        decision = pad_problem(self._problem(n=250, k=120), 32, 32)
        assert decision.padded_n and decision.padded_k
        assert decision.problem.n == 256 and decision.problem.k == 128
        assert decision.extra_flops > 0

    def test_skips_expensive_padding(self):
        decision = pad_problem(self._problem(n=33, k=128), 32, 32, max_overhead=0.2)
        assert not decision.padded_n

    def test_never_pads_depthwise_reduction(self):
        decision = pad_problem(self._problem(n=256, k=9, depthwise=True), 128, 128)
        assert not decision.padded_k

    def test_padding_increases_stationary_bytes(self):
        decision = pad_problem(self._problem(n=250, k=128), 32, 32)
        assert decision.problem.stationary_bytes > self._problem(n=250, k=128).stationary_bytes


class TestMapper:
    def test_maps_conv_successfully(self, small_config):
        graph = build_conv_graph(batch=2)
        cost = Mapper(small_config).map_op(graph.op("op"), graph.tensors)
        assert not cost.schedule_failed
        assert cost.compute_cycles > 0
        assert cost.dram_bytes > 0
        assert 0 < cost.utilization <= 1.0

    def test_cache_reuses_identical_problems(self, small_config):
        mapper = Mapper(small_config)
        graph = build_conv_graph(batch=2)
        first = mapper.map_op(graph.op("op"), graph.tensors)
        second = mapper.map_op(graph.op("op"), graph.tensors)
        assert first.compute_cycles == second.compute_cycles

    def test_rejects_vector_ops(self, small_config):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 8))
        builder.softmax(x, name="sm")
        with pytest.raises(ValueError):
            Mapper(small_config).map_op(builder.graph.op("sm"), builder.graph.tensors)

    def test_schedule_failure_with_tiny_buffers(self):
        config = DatapathConfig(
            systolic_array_x=256, systolic_array_y=256,
            l1_input_buffer_kib=1, l1_weight_buffer_kib=1, l1_output_buffer_kib=1,
            l1_buffer_config=__import__("repro.hardware.datapath", fromlist=["BufferConfig"]).BufferConfig.PRIVATE,
        )
        graph = build_conv_graph()
        cost = Mapper(config).map_op(graph.op("op"), graph.tensors)
        assert cost.schedule_failed

    def test_more_pes_reduce_compute_cycles(self):
        graph = build_conv_graph(batch=4, size=32, in_ch=64, out_ch=128)
        few = DatapathConfig(pes_x_dim=1, pes_y_dim=1, systolic_array_x=32, systolic_array_y=32)
        many = DatapathConfig(pes_x_dim=8, pes_y_dim=8, systolic_array_x=32, systolic_array_y=32)
        cost_few = Mapper(few).map_op(graph.op("op"), graph.tensors)
        cost_many = Mapper(many).map_op(graph.op("op"), graph.tensors)
        assert cost_many.compute_cycles < cost_few.compute_cycles

    def test_depthwise_prefers_smaller_arrays(self):
        """The core EfficientNet observation: small arrays run depthwise better."""
        graph = build_conv_graph(batch=8, size=32, in_ch=256, depthwise=True)
        big = DatapathConfig(pes_x_dim=1, pes_y_dim=1, systolic_array_x=128, systolic_array_y=128)
        small = DatapathConfig(pes_x_dim=4, pes_y_dim=4, systolic_array_x=32, systolic_array_y=32)
        cost_big = Mapper(big).map_op(graph.op("op"), graph.tensors)
        cost_small = Mapper(small).map_op(graph.op("op"), graph.tensors)
        assert cost_small.utilization > cost_big.utilization

    def test_execution_cycles_excludes_pinned_tensors(self, small_config):
        graph = build_conv_graph(batch=2)
        cost = Mapper(small_config).map_op(graph.op("op"), graph.tensors)
        full = cost.execution_cycles(dram_bytes_per_cycle=8.0)
        reduced = cost.execution_cycles(dram_bytes_per_cycle=8.0, exclude_input=True, exclude_weight=True)
        assert reduced <= full

    def test_opcost_traffic_scaling(self):
        cost = OpCost(
            op_name="x", op_type=OpType.CONV2D,
            dram_input_bytes=100.0, dram_weight_bytes=50.0, dram_output_bytes=25.0,
        )
        scaled = cost.with_traffic_scaled(2.0)
        assert scaled.dram_bytes == pytest.approx(350.0)
