"""Property-based tests (hypothesis) for the extension modules."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fusion.blocking import blocked_region_stats
from repro.fusion.fast_fusion import RegionStats
from repro.hardware.datapath import DatapathConfig
from repro.hardware.noc import MeshNocModel
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.ascii_plots import sparkline
from repro.reporting.tables import format_table, to_csv
from repro.search import SimulatedAnnealingOptimizer
from repro.workloads.quantization import QuantizationRecipe, quantize_graph

SPACE = DatapathSearchSpace()
NOC = MeshNocModel()

pow2 = st.integers(min_value=0, max_value=6).map(lambda e: 2**e)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ---------------------------------------------------------------------------
# Search space
# ---------------------------------------------------------------------------
class TestSearchSpaceProperties:
    @given(seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip(self, seed):
        params = SPACE.sample(np.random.default_rng(seed))
        assert SPACE.decode(SPACE.encode(params)) == params

    @given(seed=seeds, num_mutations=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_mutation_stays_inside_choices(self, seed, num_mutations):
        rng = np.random.default_rng(seed)
        params = SPACE.sample(rng)
        mutated = SPACE.mutate(params, rng, num_mutations=num_mutations)
        for spec in SPACE.specs:
            assert mutated[spec.name] in spec.choices

    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_sample_converts_to_valid_config(self, seed):
        params = SPACE.sample(np.random.default_rng(seed))
        config = SPACE.to_config(params)
        assert config.total_macs >= 1
        assert SPACE.from_config(config) == params


# ---------------------------------------------------------------------------
# NoC model
# ---------------------------------------------------------------------------
class TestNocProperties:
    @given(x=pow2, y=pow2)
    @settings(max_examples=40, deadline=None)
    def test_router_and_link_counts_consistent(self, x, y):
        noc = NOC.characterize(DatapathConfig(pes_x_dim=x, pes_y_dim=y))
        assert noc.num_routers == x * y
        assert noc.num_links == x * (y - 1) + y * (x - 1)
        assert noc.area_mm2 > 0
        assert noc.bisection_bandwidth_bytes_per_cycle > 0

    @given(x=pow2, y=pow2, payload=st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_never_cheaper_than_unicast(self, x, y, payload):
        config = DatapathConfig(pes_x_dim=x, pes_y_dim=y)
        assert NOC.broadcast_cycles(config, payload) >= NOC.unicast_cycles(config, payload)


# ---------------------------------------------------------------------------
# Blocking transformation
# ---------------------------------------------------------------------------
region_strategy = st.builds(
    lambda i, ib, wb, ob, busy: RegionStats(
        index=i,
        name=f"r{i}",
        busy_cycles=busy,
        t_max_cycles=busy + (ib + wb + ob) / 64.0,
        input_dram_cycles=ib / 64.0,
        weight_dram_cycles=wb / 64.0,
        output_dram_cycles=ob / 64.0,
        input_bytes=ib,
        weight_bytes=wb,
        output_bytes=ob,
    ),
    st.integers(0, 100),
    st.integers(0, 10**8),
    st.integers(0, 10**8),
    st.integers(0, 10**8),
    st.floats(min_value=1.0, max_value=1e6),
)


class TestBlockingProperties:
    @given(regions=st.lists(region_strategy, min_size=1, max_size=8),
           factor=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_blocking_never_grows_footprints(self, regions, factor):
        blocked = blocked_region_stats(regions, factor)
        for before, after in zip(regions, blocked):
            assert after.input_bytes <= before.input_bytes
            assert after.output_bytes <= before.output_bytes
            assert after.weight_bytes == before.weight_bytes
            assert after.input_dram_cycles == before.input_dram_cycles


# ---------------------------------------------------------------------------
# Quantization
# ---------------------------------------------------------------------------
class TestQuantizationProperties:
    @given(batch=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=8, deadline=None)
    def test_quantization_commutes_with_batch_scaling(self, batch):
        from repro.workloads.builder import GraphBuilder

        builder = GraphBuilder("prop", batch_size=batch)
        x = builder.input("x", (batch, 8, 8, 4))
        y = builder.conv2d(x, 8, (3, 3), name="conv")
        y = builder.activation(y, "relu", name="relu")
        graph = builder.finish(outputs=[y])

        quantized = quantize_graph(graph)
        assert quantized.total_flops() == graph.total_flops()
        assert quantized.weight_bytes() * 2 == graph.weight_bytes()
        assert quantized.max_working_set_bytes() * 2 == graph.max_working_set_bytes()

    def test_weight_only_never_larger_than_full_int8(self, tiny_graph):
        full = quantize_graph(tiny_graph)
        weight_only = quantize_graph(tiny_graph, QuantizationRecipe.weight_only())
        assert full.activation_bytes_total() <= weight_only.activation_bytes_total()
        assert full.weight_bytes() == weight_only.weight_bytes()


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
printable = st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12)


class TestReportingProperties:
    @given(
        headers=st.lists(printable, min_size=1, max_size=5, unique=True),
        num_rows=st.integers(min_value=0, max_value=6),
        seed=seeds,
    )
    @settings(max_examples=50, deadline=None)
    def test_format_table_line_count_and_width(self, headers, num_rows, seed):
        rng = np.random.default_rng(seed)
        rows = [[float(rng.random()) for _ in headers] for _ in range(num_rows)]
        text = format_table(headers, rows)
        lines = text.splitlines()
        assert len(lines) == 2 + num_rows
        assert len(to_csv(headers, rows).splitlines()) == 1 + num_rows

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_sparkline_length_matches_series(self, values):
        assert len(sparkline(values)) == len(values)


# ---------------------------------------------------------------------------
# Annealing temperature schedule
# ---------------------------------------------------------------------------
class TestAnnealingProperties:
    @given(num_trials=st.integers(min_value=0, max_value=200),
           initial=st.floats(min_value=0.01, max_value=2.0),
           cooling=st.floats(min_value=0.5, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_temperature_bounded_and_monotone(self, num_trials, initial, cooling):
        optimizer = SimulatedAnnealingOptimizer(
            SPACE, initial_temperature=initial, cooling_rate=cooling
        )
        temps = []
        for _ in range(min(num_trials, 30)):
            params = SPACE.sample(optimizer.rng)
            optimizer.tell(params, 1.0)
            temps.append(optimizer.temperature)
        assert all(optimizer.min_temperature <= t <= initial for t in temps)
        assert temps == sorted(temps, reverse=True)
