"""Tests for the vectorized mapping engine and the cross-trial op-cost cache.

The contract under test is *bit-for-bit equivalence*: the NumPy candidate
sweep, the scalar reference loop, and any op-cache configuration must all
produce identical op costs and identical search histories.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.mapper import Mapper, MapperOptions
from repro.mapping.tiling import (
    candidate_tilings,
    estimate_traffic,
    estimate_traffic_batch,
    tiling_candidate_arrays,
)
from repro.reporting.serialization import (
    runtime_stats_from_dict,
    runtime_stats_to_dict,
    trial_metrics_to_dict,
)
from repro.runtime.opcache import (
    OpCostCache,
    get_op_cache,
    opcost_from_dict,
    opcost_to_dict,
    reset_op_caches,
)
from repro.simulator.engine import SimulationOptions, Simulator
from repro.workloads.ops import is_matrix_op
from repro.workloads.registry import available_workloads, build_workload


@pytest.fixture(autouse=True)
def _fresh_op_caches():
    reset_op_caches()
    yield
    reset_op_caches()


def _random_configs(count: int, seed: int = 7):
    """Random datapaths drawn from the Table 3 search space."""
    space = DatapathSearchSpace()
    rng = np.random.default_rng(seed)
    configs = []
    while len(configs) < count:
        params = {
            spec.name: spec.choices[int(rng.integers(len(spec.choices)))]
            for spec in space.specs
        }
        try:
            configs.append(space.to_config(params))
        except Exception:
            continue  # invalid combination; draw again
    return configs


def _matrix_ops(graph):
    return [op for op in graph.ops if is_matrix_op(op.op_type)]


class TestTilingBatch:
    def _problem(self, m=4096, n=512, k=512, instances=1, depthwise=False):
        return MatrixProblem(
            m=m, n=n, k=k, instances=instances,
            stationary_is_weight=True, is_depthwise=depthwise,
            input_bytes=m * k * 2, stationary_bytes=k * n * 2, output_bytes=m * n * 2,
        )

    def test_candidate_arrays_match_scalar_enumeration(self):
        problem = self._problem(m=5000, n=300, k=700)
        scalar = list(candidate_tilings(problem, 32, 32, max_candidates=48))
        m_tiles, n_tiles, k_tiles = tiling_candidate_arrays(problem, 32, 32, 48)
        assert len(scalar) == len(m_tiles)
        for i, tiling in enumerate(scalar):
            assert (tiling.m_tile, tiling.n_tile, tiling.k_tile) == (
                m_tiles[i], n_tiles[i], k_tiles[i]
            )

    @pytest.mark.parametrize("capacity", [1 << 14, 1 << 20, 1 << 30])
    @pytest.mark.parametrize("depthwise", [False, True])
    def test_traffic_batch_matches_scalar_bitwise(self, capacity, depthwise):
        problem = self._problem(m=100000, n=257, k=9 if depthwise else 384,
                                instances=3, depthwise=depthwise)
        tiles = tiling_candidate_arrays(problem, 32, 32, 48)
        arrays = estimate_traffic_batch(problem, *tiles, capacity)
        for i in range(len(arrays)):
            tiling = arrays.tiling(i)
            traffic, fits = estimate_traffic(problem, tiling, capacity)
            assert bool(arrays.fits[i]) == fits
            assert int(arrays.buffer_bytes[i]) == tiling.buffer_bytes(2)
            assert float(arrays.input_bytes[i]) == traffic.input_bytes
            assert float(arrays.stationary_bytes[i]) == traffic.stationary_bytes
            assert float(arrays.output_bytes[i]) == traffic.output_bytes
            assert float(arrays.total_bytes[i]) == traffic.total_bytes


class TestVectorizedEquivalence:
    """Property sweep: random datapaths x all registered workloads."""

    def test_vectorized_equals_scalar_on_all_workloads(self):
        configs = _random_configs(4)
        mismatches = []
        for workload in available_workloads():
            graph = build_workload(workload, batch_size=1)
            tensors = graph.tensors
            for index, config in enumerate(configs):
                scalar = Mapper(config, options=MapperOptions(vectorize=False))
                vectorized = Mapper(config, options=MapperOptions(vectorize=True))
                for op in _matrix_ops(graph):
                    scalar_cost = scalar.map_op(op, tensors)
                    vector_cost = vectorized.map_op(op, tensors)
                    if scalar_cost != vector_cost:
                        mismatches.append((workload, index, op.name))
        assert mismatches == []

    def test_equivalence_covers_chosen_tiling_cycles_and_bytes(self, small_config):
        graph = build_workload("efficientnet-b0", batch_size=2)
        tensors = graph.tensors
        scalar = Mapper(small_config, options=MapperOptions(vectorize=False))
        vectorized = Mapper(small_config, options=MapperOptions(vectorize=True))
        checked = 0
        for op in _matrix_ops(graph):
            a = scalar.map_op(op, tensors)
            b = vectorized.map_op(op, tensors)
            assert a.tiling == b.tiling
            assert a.dataflow is b.dataflow
            assert a.compute_cycles == b.compute_cycles
            assert a.dram_bytes == b.dram_bytes
            assert a.utilization == b.utilization
            checked += 1
        assert checked > 0

    def test_schedule_failure_identical(self):
        config = DatapathConfig(
            systolic_array_x=256, systolic_array_y=256,
            l1_input_buffer_kib=1, l1_weight_buffer_kib=1, l1_output_buffer_kib=1,
            l1_buffer_config=__import__(
                "repro.hardware.datapath", fromlist=["BufferConfig"]
            ).BufferConfig.PRIVATE,
        )
        graph = build_workload("mobilenet-v2", batch_size=1)
        tensors = graph.tensors
        op = _matrix_ops(graph)[0]
        a = Mapper(config, options=MapperOptions(vectorize=False)).map_op(op, tensors)
        b = Mapper(config, options=MapperOptions(vectorize=True)).map_op(op, tensors)
        assert a.schedule_failed and a == b


class TestOpCostCache:
    def test_shared_across_mapper_instances(self, small_config):
        graph = build_workload("mobilenet-v2", batch_size=1)
        tensors = graph.tensors
        cache = OpCostCache()
        first = Mapper(small_config, op_cache=cache)
        for op in _matrix_ops(graph):
            first.map_op(op, tensors)
        puts = cache.stats.puts
        assert puts > 0
        second = Mapper(small_config, op_cache=cache)
        for op in _matrix_ops(graph):
            second.map_op(op, tensors)
        assert cache.stats.puts == puts  # every lookup served from the cache
        assert cache.stats.hits >= puts

    def test_different_mapping_config_does_not_collide(self, small_config):
        graph = build_workload("mobilenet-v2", batch_size=1)
        tensors = graph.tensors
        op = _matrix_ops(graph)[0]
        cache = OpCostCache()
        Mapper(small_config, op_cache=cache).map_op(op, tensors)
        other = small_config.evolve(systolic_array_x=64, systolic_array_y=64)
        mapper = Mapper(other, op_cache=cache)
        before = cache.stats.misses
        cost = mapper.map_op(op, tensors)
        assert cache.stats.misses > before
        assert cost == Mapper(other).map_op(op, tensors)

    def test_cached_costs_are_relabeled_per_op(self, small_config):
        graph = build_workload("efficientnet-b0", batch_size=1)
        tensors = graph.tensors
        cache = OpCostCache()
        mapper = Mapper(small_config, op_cache=cache)
        costs = {op.name: mapper.map_op(op, tensors) for op in _matrix_ops(graph)}
        fresh = Mapper(small_config, op_cache=cache)
        for op in _matrix_ops(graph):
            cost = fresh.map_op(op, tensors)
            assert cost.op_name == op.name
            assert cost == costs[op.name]

    def test_persistence_round_trip(self, small_config, tmp_path):
        graph = build_workload("mobilenet-v2", batch_size=1)
        tensors = graph.tensors
        store = tmp_path / "opcache.jsonl"
        writer = OpCostCache(path=store)
        mapper = Mapper(small_config, op_cache=writer)
        expected = {op.name: mapper.map_op(op, tensors) for op in _matrix_ops(graph)}
        assert store.exists()

        reader = OpCostCache(path=store)
        assert reader.stats.disk_entries_loaded == writer.stats.puts
        mapper = Mapper(small_config, op_cache=reader)
        for op in _matrix_ops(graph):
            assert mapper.map_op(op, tensors) == expected[op.name]
        assert reader.stats.misses == 0

    def test_opcost_dict_round_trip(self, small_config):
        graph = build_workload("efficientnet-b0", batch_size=1)
        tensors = graph.tensors
        for op in _matrix_ops(graph)[:5]:
            cost = Mapper(small_config).map_op(op, tensors)
            assert opcost_from_dict(opcost_to_dict(cost)) == cost

    def test_disk_store_never_reappends_known_keys(self, small_config, tmp_path):
        graph = build_workload("mobilenet-v2", batch_size=1)
        tensors = graph.tensors
        store = tmp_path / "opcache.jsonl"
        # Tiny memory front forces evictions; re-puts of evicted keys must
        # still not grow the disk store.
        cache = OpCostCache(path=store, max_memory_entries=1)
        for _ in range(3):
            mapper = Mapper(small_config, op_cache=cache)
            for op in _matrix_ops(graph):
                mapper.map_op(op, tensors)
        lines = store.read_text().splitlines()
        assert len(lines) == len(set(json.loads(l)["key"] for l in lines))

        reopened = OpCostCache(path=store, max_memory_entries=1)
        mapper = Mapper(small_config, op_cache=reopened)
        for op in _matrix_ops(graph):
            mapper.map_op(op, tensors)
        assert store.read_text().splitlines() == lines

    def test_compact_folds_duplicate_records(self, small_config, tmp_path):
        store = tmp_path / "opcache.jsonl"
        from repro.mapping.costmodel import OpCost
        from repro.workloads.ops import OpType

        cost = OpCost(op_name="op", op_type=OpType.MATMUL, compute_cycles=5.0)
        record = {"key": OpCostCache.digest(("k",)), "cost": opcost_to_dict(cost)}
        # Simulate two racing writers appending the same key.
        store.write_text((json.dumps(record) + "\n") * 3)
        cache = OpCostCache(path=store)
        kept = cache.compact()
        assert kept == 1
        assert len(store.read_text().splitlines()) == 1
        assert cache.get(("k",)) == cost

    def test_memory_lru_bounded(self):
        cache = OpCostCache(max_memory_entries=4)
        from repro.mapping.costmodel import OpCost
        from repro.workloads.ops import OpType

        for i in range(10):
            cache.put(("key", i), OpCost(op_name=f"op{i}", op_type=OpType.MATMUL))
        assert len(cache._memory) == 4

    def test_process_registry_shares_instances(self, tmp_path):
        assert get_op_cache() is get_op_cache()
        path = tmp_path / "store.jsonl"
        assert get_op_cache(path) is get_op_cache(path)
        assert get_op_cache(path) is not get_op_cache()


class TestSearchEquivalence:
    def _run(self, vectorized, op_cache, trials=10, seed=3):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        evaluator = TrialEvaluator(
            problem,
            simulation_options=SimulationOptions(
                fusion_solver="greedy",
                vectorized_mapper=vectorized,
                op_cache_enabled=op_cache,
                # This class tests the op-cache layer in isolation; with the
                # region cache on, warm trials would never reach the mapper
                # (see test_graph_batched_mapper.py for the layered caches).
                region_cache_enabled=False,
            ),
        )
        search = FASTSearch(problem, optimizer="lcs", seed=seed, evaluator=evaluator)
        return search.run(num_trials=trials, batch_size=4)

    @staticmethod
    def _history(result):
        return [trial_metrics_to_dict(m) for m in result.history]

    def test_fast_path_reproduces_scalar_history_bitwise(self):
        reference = self._run(vectorized=False, op_cache=False)
        fast = self._run(vectorized=True, op_cache=True)
        assert self._history(fast) == self._history(reference)
        assert fast.best_params == reference.best_params
        assert fast.best_score_curve == reference.best_score_curve

    def test_op_cache_on_off_identical_histories(self):
        without = self._run(vectorized=True, op_cache=False)
        reset_op_caches()
        with_cache = self._run(vectorized=True, op_cache=True)
        rerun = self._run(vectorized=True, op_cache=True)  # warm, same process
        assert self._history(with_cache) == self._history(without)
        assert self._history(rerun) == self._history(without)
        assert rerun.runtime.op_cache_hits > 0

    def test_runtime_stats_surface_op_cache_and_stage_times(self):
        result = self._run(vectorized=True, op_cache=True)
        stats = result.runtime
        assert stats.op_cache_hits + stats.op_cache_misses > 0
        assert stats.eval_seconds > 0
        assert stats.mapper_seconds > 0
        assert 0.0 <= stats.op_cache_hit_rate <= 1.0


class TestRuntimeStatsSerialization:
    def test_round_trip(self):
        from repro.core.fast import RuntimeStats

        stats = RuntimeStats(
            trials_evaluated=12, cache_hits=3, batches=2, duplicates_avoided=1,
            resumed_trials=0, elapsed_seconds=1.5, op_cache_hits=40,
            op_cache_misses=8, mapper_seconds=0.5, vector_seconds=0.1,
            fusion_seconds=0.2, eval_seconds=0.9,
        )
        data = runtime_stats_to_dict(stats)
        assert data["op_cache_hits"] == 40
        assert runtime_stats_from_dict(data) == stats

    def test_from_dict_tolerates_old_and_unknown_keys(self):
        from repro.core.fast import RuntimeStats

        old = {"trials_evaluated": 5, "cache_hits": 1, "batches": 2,
               "duplicates_avoided": 0, "resumed_trials": 0,
               "elapsed_seconds": 0.1, "not_a_field": 99}
        stats = runtime_stats_from_dict(old)
        assert stats.trials_evaluated == 5
        assert stats.op_cache_hits == 0
        assert isinstance(stats, RuntimeStats)

    def test_search_result_payload_includes_new_fields(self):
        from repro.reporting.serialization import search_result_to_dict

        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)
        evaluator = TrialEvaluator(problem)
        search = FASTSearch(problem, optimizer="random", seed=0, evaluator=evaluator)
        result = search.run(num_trials=3, batch_size=2)
        payload = search_result_to_dict(result)
        assert "op_cache_hits" in payload["runtime"]
        assert "mapper_seconds" in payload["runtime"]


class TestSimulatorIntegration:
    def test_simulator_modes_identical_results(self, small_config, tiny_graph):
        results = []
        for vectorized, op_cache in [(False, False), (True, False), (True, True)]:
            simulator = Simulator(small_config, SimulationOptions(
                fusion_solver="greedy",
                vectorized_mapper=vectorized,
                op_cache_enabled=op_cache,
            ))
            results.append(simulator.simulate(tiny_graph))
        base = results[0]
        for other in results[1:]:
            assert other.latency_ms == base.latency_ms
            assert other.qps == base.qps
            assert [r.pre_fusion_cycles for r in other.regions] == [
                r.pre_fusion_cycles for r in base.regions
            ]

    def test_stage_seconds_accumulate(self, small_config, tiny_graph):
        simulator = Simulator(small_config, SimulationOptions(fusion_solver="greedy"))
        simulator.simulate(tiny_graph)
        assert simulator.stage_seconds["mapper"] > 0
        assert simulator.stage_seconds["vector"] > 0

    def test_problem_memo_is_correct_across_graphs(self, small_config):
        """Two ops with identical names in different graphs must not collide."""
        from repro.workloads.builder import GraphBuilder

        def build(features):
            builder = GraphBuilder("g", batch_size=1)
            x = builder.input("x", (1, 64))
            builder.matmul(x, features, name="op")
            return builder.graph

        a, b = build(64), build(256)
        mapper = Mapper(small_config)
        cost_a = mapper.map_op(a.op("op"), a.tensors)
        cost_b = mapper.map_op(b.op("op"), b.tensors)
        assert extract_problem(b.op("op"), b.tensors).n == 256
        assert cost_a != cost_b
