"""Tests for the black-box optimizers and Pareto tracking."""

import math

import numpy as np
import pytest

from repro.hardware.search_space import DatapathSearchSpace
from repro.search import (
    BayesianOptimizer,
    LinearCombinationSwarmOptimizer,
    RandomSearchOptimizer,
    make_optimizer,
)
from repro.search.pareto import ParetoFront, dominates


@pytest.fixture(scope="module")
def space():
    return DatapathSearchSpace()


def synthetic_objective(space, params):
    """A smooth synthetic objective over the encoded space (lower is better).

    The optimum is at the all-ones corner of the encoding, i.e. the largest
    value of every parameter.
    """
    vector = space.encode(params)
    return float(np.sum((1.0 - vector) ** 2))


def run_optimizer(optimizer, space, trials):
    for _ in range(trials):
        params = optimizer.ask()
        objective = synthetic_objective(space, params)
        optimizer.tell(params, objective, feasible=True)
    return optimizer


class TestOptimizerInterface:
    def test_make_optimizer_by_name(self, space):
        assert isinstance(make_optimizer("random", space), RandomSearchOptimizer)
        assert isinstance(make_optimizer("bayesian", space), BayesianOptimizer)
        assert isinstance(make_optimizer("lcs", space), LinearCombinationSwarmOptimizer)
        with pytest.raises(ValueError):
            make_optimizer("gradient-descent", space)

    def test_tell_records_observations(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        params = optimizer.ask()
        optimizer.tell(params, 1.0, feasible=True)
        optimizer.tell(optimizer.ask(), 2.0, feasible=False)
        assert optimizer.num_trials == 2
        assert len(optimizer.feasible_observations) == 1

    def test_best_observation_ignores_infeasible(self, space):
        optimizer = RandomSearchOptimizer(space, seed=0)
        optimizer.tell(optimizer.ask(), 0.1, feasible=False)
        optimizer.tell(optimizer.ask(), 5.0, feasible=True)
        assert optimizer.best_observation().objective == 5.0

    def test_best_objective_curve_monotone(self, space):
        optimizer = run_optimizer(RandomSearchOptimizer(space, seed=1), space, 30)
        curve = optimizer.best_objective_curve()
        assert len(curve) == 30
        assert all(curve[i + 1] <= curve[i] for i in range(len(curve) - 1))

    def test_ask_returns_complete_assignments(self, space):
        for name in ("random", "bayesian", "lcs"):
            optimizer = make_optimizer(name, space, seed=3)
            params = optimizer.ask()
            assert set(params) == set(space.parameter_names)


class TestOptimizerQuality:
    def test_random_search_is_reproducible(self, space):
        a = RandomSearchOptimizer(space, seed=42).ask()
        b = RandomSearchOptimizer(space, seed=42).ask()
        assert a == b

    def test_lcs_beats_random_on_synthetic_objective(self, space):
        """Figure 11: guided search converges faster than random sampling."""
        trials = 120
        random_best = run_optimizer(
            RandomSearchOptimizer(space, seed=0), space, trials
        ).best_observation().objective
        lcs_best = run_optimizer(
            LinearCombinationSwarmOptimizer(space, seed=0), space, trials
        ).best_observation().objective
        assert lcs_best <= random_best

    def test_bayesian_improves_over_its_random_phase(self, space):
        optimizer = BayesianOptimizer(space, seed=0, num_initial_random=10)
        run_optimizer(optimizer, space, 40)
        curve = optimizer.best_objective_curve()
        assert curve[-1] <= curve[9]

    def test_lcs_handles_all_infeasible_gracefully(self, space):
        optimizer = LinearCombinationSwarmOptimizer(space, seed=0)
        for _ in range(10):
            optimizer.tell(optimizer.ask(), math.inf, feasible=False)
        params = optimizer.ask()
        assert set(params) == set(space.parameter_names)

    def test_bayesian_handles_mixed_feasibility(self, space):
        optimizer = BayesianOptimizer(space, seed=0, num_initial_random=4)
        for i in range(12):
            params = optimizer.ask()
            optimizer.tell(params, synthetic_objective(space, params), feasible=(i % 3 != 0))
        assert set(optimizer.ask()) == set(space.parameter_names)


class TestPareto:
    def test_dominates_basic(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_dominates_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))

    def test_front_keeps_non_dominated_points(self):
        front = ParetoFront()
        assert front.add((1.0, 5.0))
        assert front.add((5.0, 1.0))
        assert not front.add((6.0, 6.0))  # dominated by both
        assert len(front) == 2

    def test_front_evicts_dominated_points(self):
        front = ParetoFront()
        front.add((5.0, 5.0))
        front.add((1.0, 1.0))
        assert len(front) == 1
        assert (1.0, 1.0) in front

    def test_all_points_recorded(self):
        front = ParetoFront()
        front.add((1.0, 1.0))
        front.add((2.0, 2.0))
        assert len(front.all_points) == 2
        assert len(front) == 1

    def test_sorted_by_axis(self):
        front = ParetoFront()
        front.add((1.0, 5.0))
        front.add((5.0, 1.0))
        front.add((3.0, 3.0))
        xs = [p.objectives[0] for p in front.sorted_by(0)]
        assert xs == sorted(xs)

    def test_payload_preserved(self):
        front = ParetoFront()
        front.add((1.0, 2.0), payload={"name": "design-a"})
        assert front.points[0].payload["name"] == "design-a"

    def test_add_batch_counts_joins(self):
        front = ParetoFront()
        joined = front.add_batch(
            [((1.0, 5.0), None), ((5.0, 1.0), {"name": "b"}), ((6.0, 6.0), None)]
        )
        assert joined == 2
        assert len(front) == 2

    def test_merge_combines_sharded_fronts(self):
        a = ParetoFront()
        a.add((1.0, 5.0))
        a.add((4.0, 4.0))
        b = ParetoFront()
        b.add((5.0, 1.0))
        b.add((2.0, 2.0))  # dominates (4.0, 4.0) from the other shard
        a.merge(b)
        assert len(a) == 3
        assert (4.0, 4.0) not in a
        assert len(a.all_points) == 4
