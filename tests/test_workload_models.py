"""Tests for the benchmark workload builders (EfficientNet, BERT, ResNet, OCR)."""

import pytest

from repro.workloads.bert import BERT_BASE, BERT_LARGE, BertConfig, build_bert, op_component
from repro.workloads.efficientnet import (
    EFFICIENTNET_TOP1_ACCURACY,
    EFFICIENTNET_VARIANTS,
    build_efficientnet,
    round_filters,
    round_repeats,
)
from repro.workloads.graph import TensorKind
from repro.workloads.ocr import build_ocr_recognizer, build_ocr_rpn
from repro.workloads.ops import OpType
from repro.workloads.registry import (
    FULL_SUITE,
    MULTI_WORKLOAD_SUITE,
    available_workloads,
    build_workload,
)
from repro.workloads.resnet import build_resnet50


class TestEfficientNet:
    def test_all_variants_defined(self):
        assert len(EFFICIENTNET_VARIANTS) == 8
        assert set(EFFICIENTNET_TOP1_ACCURACY) == set(EFFICIENTNET_VARIANTS)

    def test_round_filters_multiple_of_divisor(self):
        assert round_filters(32, 1.0) == 32
        assert round_filters(32, 1.4) % 8 == 0
        assert round_filters(32, 2.0) == 64

    def test_round_repeats_ceils(self):
        assert round_repeats(1, 3.1) == 4
        assert round_repeats(2, 1.0) == 2

    def test_b0_flops_in_published_range(self, efficientnet_b0):
        # EfficientNet-B0 is ~0.39 GMACs = ~0.78 GFLOPs.
        gflops = efficientnet_b0.total_flops() / 1e9
        assert 0.6 < gflops < 1.1

    def test_b0_contains_depthwise_convolutions(self, efficientnet_b0):
        types = {op.op_type for op in efficientnet_b0.ops}
        assert OpType.DEPTHWISE_CONV2D in types

    def test_larger_variants_have_more_flops_and_weights(self):
        b0 = build_efficientnet("efficientnet-b0")
        b3 = build_efficientnet("efficientnet-b3")
        assert b3.total_flops() > 1.5 * b0.total_flops()
        assert b3.weight_bytes() > b0.weight_bytes()

    def test_working_set_grows_with_variant(self):
        """Table 1: larger EfficientNets have larger working sets."""
        b0 = build_efficientnet("efficientnet-b0")
        b4 = build_efficientnet("efficientnet-b4")
        assert b4.max_working_set_bytes() > b0.max_working_set_bytes()

    def test_accuracy_monotonically_increases(self):
        accuracies = [
            EFFICIENTNET_TOP1_ACCURACY[f"efficientnet-b{i}"] for i in range(8)
        ]
        assert accuracies == sorted(accuracies)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_efficientnet("efficientnet-b9")

    def test_batch_size_scales_activations_not_weights(self):
        b1 = build_efficientnet("efficientnet-b0", batch_size=1)
        b4 = build_efficientnet("efficientnet-b0", batch_size=4)
        assert b4.weight_bytes() == b1.weight_bytes()
        assert b4.total_flops() == pytest.approx(4 * b1.total_flops(), rel=0.01)

    def test_depthwise_flop_share_is_small(self, efficientnet_b0):
        """Table 2: depthwise convs are a small share of FLOPs."""
        by_type = efficientnet_b0.flops_by_op_type()
        total = efficientnet_b0.total_flops()
        dw_share = by_type.get(OpType.DEPTHWISE_CONV2D, 0) / total
        assert 0.01 < dw_share < 0.2


class TestBert:
    def test_default_config_is_base(self):
        assert BERT_BASE.num_layers == 12
        assert BERT_BASE.hidden_size == 768
        assert BERT_BASE.head_dim == 64
        assert BERT_LARGE.num_layers == 24

    def test_flops_scale_roughly_linearly_at_short_lengths(self):
        g128 = build_bert(seq_len=128)
        g256 = build_bert(seq_len=256)
        ratio = g256.total_flops() / g128.total_flops()
        assert 1.9 < ratio < 2.4

    def test_attention_grows_quadratically(self):
        """Figure 5: attention scores scale as O(N^2) with sequence length."""
        def attention_flops(graph):
            return sum(
                op.flops(graph.tensors)
                for op in graph.ops
                if op.op_type is OpType.EINSUM
            )

        g128 = build_bert(seq_len=128)
        g512 = build_bert(seq_len=512)
        ratio = attention_flops(g512) / attention_flops(g128)
        assert 14 < ratio < 18  # 4x seq -> 16x attention FLOPs

    def test_contains_softmax_and_layernorm(self, bert_seq128):
        types = {op.op_type for op in bert_seq128.ops}
        assert OpType.SOFTMAX in types
        assert OpType.LAYERNORM in types

    def test_weight_bytes_close_to_published(self, bert_seq128):
        # BERT-Base has ~110M parameters; encoder weights alone are ~85M.
        # In bfloat16 the full model is ~220 MB.
        mib = bert_seq128.weight_bytes() / (1 << 20)
        assert 150 < mib < 260

    def test_rejects_non_positive_seq_len(self):
        with pytest.raises(ValueError):
            build_bert(seq_len=0)

    def test_op_component_classification(self):
        assert op_component("layer3.attention.query") == "qkv_projection"
        assert op_component("layer3.attention.softmax") == "softmax"
        assert op_component("layer3.attention.scores") == "self_attention"
        assert op_component("layer3.ffn.intermediate") == "feed_forward"
        assert op_component("embeddings.layernorm") == "other"

    def test_custom_config(self):
        small = BertConfig(num_layers=2, hidden_size=128, num_heads=4, intermediate_size=512)
        graph = build_bert(seq_len=32, config=small)
        assert graph.total_flops() < build_bert(seq_len=32).total_flops()


class TestResNetAndOcr:
    def test_resnet_flops_in_published_range(self, resnet50):
        # ResNet-50 is ~4.1 GMACs = ~8.2 GFLOPs at 224x224.
        gflops = resnet50.total_flops() / 1e9
        assert 6.5 < gflops < 10.0

    def test_resnet_has_no_depthwise(self, resnet50):
        types = {op.op_type for op in resnet50.ops}
        assert OpType.DEPTHWISE_CONV2D not in types

    def test_resnet_weight_bytes_reasonable(self, resnet50):
        # ~25.5M parameters in bfloat16 is ~49 MiB.
        mib = resnet50.weight_bytes() / (1 << 20)
        assert 40 < mib < 60

    def test_ocr_rpn_is_conv_dominated(self):
        rpn = build_ocr_rpn(batch_size=1, image_size=256)
        by_type = rpn.flops_by_op_type()
        assert by_type[OpType.CONV2D] / rpn.total_flops() > 0.95

    def test_ocr_recognizer_contains_matmuls_and_activations(self):
        rec = build_ocr_recognizer(batch_size=1, sequence_length=16)
        types = {op.op_type for op in rec.ops}
        assert OpType.MATMUL in types
        assert OpType.ACTIVATION in types

    def test_ocr_recognizer_scales_with_sequence_length(self):
        short = build_ocr_recognizer(sequence_length=16)
        long = build_ocr_recognizer(sequence_length=32)
        assert long.total_flops() > short.total_flops()


class TestRegistry:
    def test_full_suite_registered(self):
        for name in FULL_SUITE:
            assert name in available_workloads()

    def test_multi_workload_suite_is_subset(self):
        assert set(MULTI_WORKLOAD_SUITE) <= set(FULL_SUITE)
        assert len(MULTI_WORKLOAD_SUITE) == 5

    def test_build_workload_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("alexnet")

    def test_build_workload_batch_size(self):
        graph = build_workload("resnet50", batch_size=2)
        assert graph.batch_size == 2

    def test_all_workloads_validate(self):
        for name in available_workloads():
            graph = build_workload(name, batch_size=1)
            graph.validate()
            assert graph.total_flops() > 0
