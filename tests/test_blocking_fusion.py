"""Tests for inter-op blocking on top of FAST fusion."""

from __future__ import annotations

import pytest

from repro.fusion import (
    BlockingAwareFusionOptimizer,
    FastFusionOptimizer,
    RegionStats,
    blocked_region_stats,
)

MIB = 1024 * 1024


def make_region(index, *, input_mib=4, weight_mib=2, output_mib=4, busy=1000.0,
                dram_per_mib=500.0, predecessor=None, is_output=False):
    """A memory-bound region whose DRAM time scales with its tensor sizes."""
    input_cycles = dram_per_mib * input_mib
    weight_cycles = dram_per_mib * weight_mib
    output_cycles = dram_per_mib * output_mib
    t_max = max(busy, input_cycles + weight_cycles + output_cycles)
    return RegionStats(
        index=index,
        name=f"region{index}",
        busy_cycles=busy,
        t_max_cycles=t_max,
        input_dram_cycles=input_cycles,
        weight_dram_cycles=weight_cycles,
        output_dram_cycles=output_cycles,
        input_bytes=input_mib * MIB,
        weight_bytes=weight_mib * MIB,
        output_bytes=output_mib * MIB,
        predecessor=predecessor,
        is_graph_output=is_output,
    )


def make_chain(num_regions=6, **kwargs):
    regions = []
    for i in range(num_regions):
        regions.append(
            make_region(
                i,
                predecessor=i - 1 if i > 0 else None,
                is_output=(i == num_regions - 1),
                **kwargs,
            )
        )
    return regions


class TestBlockedRegionStats:
    def test_factor_one_is_identity(self):
        regions = make_chain(3)
        assert blocked_region_stats(regions, 1) == list(regions)

    def test_activation_bytes_shrink_weights_do_not(self):
        regions = make_chain(3)
        blocked = blocked_region_stats(regions, 4)
        for before, after in zip(regions, blocked):
            assert after.input_bytes == pytest.approx(before.input_bytes / 4)
            assert after.output_bytes == pytest.approx(before.output_bytes / 4)
            assert after.weight_bytes == before.weight_bytes

    def test_dram_cycles_unchanged(self):
        regions = make_chain(3)
        blocked = blocked_region_stats(regions, 8)
        for before, after in zip(regions, blocked):
            assert after.input_dram_cycles == before.input_dram_cycles
            assert after.output_dram_cycles == before.output_dram_cycles

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            blocked_region_stats(make_chain(2), 0)


class TestBlockingAwareFusionOptimizer:
    def test_never_worse_than_unblocked(self):
        regions = make_chain(8)
        capacity = 6 * MIB  # too small to pin whole activations comfortably
        plain = FastFusionOptimizer(capacity, solver="greedy").optimize(regions)
        blocked = BlockingAwareFusionOptimizer(
            capacity, solver="greedy", block_factors=(1, 2, 4, 8)
        ).optimize(regions)
        assert blocked.fusion.total_cycles_post <= plain.total_cycles_post

    def test_tight_capacity_prefers_blocking(self):
        regions = make_chain(8, input_mib=16, output_mib=16, weight_mib=1)
        capacity = 8 * MIB  # whole 16 MiB activations cannot be pinned
        result = BlockingAwareFusionOptimizer(
            capacity, solver="greedy", block_factors=(1, 4, 16)
        ).optimize(regions)
        assert result.block_factor > 1
        assert result.speedup_over_unblocked >= 1.0

    def test_ample_capacity_keeps_factor_one(self):
        regions = make_chain(4, input_mib=1, output_mib=1, weight_mib=1)
        capacity = 512 * MIB
        result = BlockingAwareFusionOptimizer(
            capacity, solver="greedy", block_factors=(1, 2, 4)
        ).optimize(regions)
        # Factor 1 already pins everything; larger factors cannot improve.
        assert result.cycles_by_factor[1] == pytest.approx(
            min(result.cycles_by_factor.values())
        )

    def test_cycles_reported_for_every_factor(self):
        regions = make_chain(4)
        result = BlockingAwareFusionOptimizer(
            4 * MIB, solver="greedy", block_factors=(1, 2, 4)
        ).optimize(regions)
        assert set(result.cycles_by_factor) == {1, 2, 4}

    def test_factor_one_always_included(self):
        optimizer = BlockingAwareFusionOptimizer(MIB, block_factors=(4, 8))
        assert 1 in optimizer.block_factors

    def test_invalid_factors_rejected(self):
        with pytest.raises(ValueError):
            BlockingAwareFusionOptimizer(MIB, block_factors=())
        with pytest.raises(ValueError):
            BlockingAwareFusionOptimizer(MIB, block_factors=(0, 2))

    def test_end_to_end_on_simulated_regions(self, b0_on_fast_large, fast_large_config):
        """Blocking applied to real EfficientNet-B0 region statistics."""
        # Reconstruct region stats from a fresh simulation to exercise the
        # full path: simulate -> stats -> blocked fusion.
        from repro.simulator.engine import Simulator

        simulator = Simulator(fast_large_config)
        graph = __import__("repro.workloads.registry", fromlist=["build_workload"]).build_workload(
            "efficientnet-b0", batch_size=fast_large_config.native_batch_size
        )
        compiled_result = simulator.simulate(graph)
        assert compiled_result.fusion_result is not None
        # The blocked optimizer on the same capacity should not regress the
        # post-fusion cycle count reported by the simulator's plain pass.
        optimizer = BlockingAwareFusionOptimizer(
            fast_large_config.global_buffer_bytes, solver="greedy"
        )
        # Re-derive stats by running the plain optimizer input path again.
        # (The simulator does not expose its RegionStats list publicly, so we
        # just check the blocked optimizer runs on synthetic stats above and
        # the simulator integration stays green here.)
        assert optimizer.block_factors[0] == 1
