"""Tests for the GraphBuilder convenience layer."""

import pytest

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import GraphValidationError, TensorKind
from repro.workloads.ops import OpType


@pytest.fixture
def builder():
    return GraphBuilder("test", batch_size=2)


class TestVisionLayers:
    def test_conv2d_same_padding_shape(self, builder):
        x = builder.input("x", (2, 17, 17, 3))
        y = builder.conv2d(x, 8, (3, 3), stride=2)
        assert builder.shape(y) == (2, 9, 9, 8)

    def test_conv2d_creates_weight(self, builder):
        x = builder.input("x", (2, 8, 8, 3))
        builder.conv2d(x, 8, (3, 3), name="c")
        w = builder.graph.tensor("c.w")
        assert w.kind is TensorKind.WEIGHT
        assert w.shape == (3, 3, 3, 8)

    def test_depthwise_preserves_channels(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        y = builder.depthwise_conv2d(x, (3, 3), stride=1)
        assert builder.shape(y)[-1] == 16

    def test_depthwise_channel_multiplier(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        y = builder.depthwise_conv2d(x, (3, 3), channel_multiplier=2)
        assert builder.shape(y)[-1] == 32

    def test_pointwise_conv_is_1x1(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        builder.pointwise_conv(x, 4, name="pw")
        assert builder.graph.op("pw").attrs["kernel"] == (1, 1)

    def test_pooling_strided(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        y = builder.pooling(x, (2, 2), stride=2)
        assert builder.shape(y) == (2, 4, 4, 16)

    def test_global_pooling(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        y = builder.pooling(x, (8, 8), stride=1, global_pool=True)
        assert builder.shape(y) == (2, 1, 1, 16)

    def test_batchnorm_keeps_shape_and_adds_params(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        y = builder.batchnorm(x, name="bn")
        assert builder.shape(y) == (2, 8, 8, 16)
        assert builder.graph.tensor("bn.scale").shape == (16,)


class TestDenseAndVectorLayers:
    def test_matmul_output_shape(self, builder):
        x = builder.input("x", (2, 64))
        y = builder.matmul(x, 32)
        assert builder.shape(y) == (2, 32)

    def test_matmul_on_sequences(self, builder):
        x = builder.input("x", (2, 10, 64))
        y = builder.matmul(x, 32)
        assert builder.shape(y) == (2, 10, 32)

    def test_matmul_shared_weight(self, builder):
        x = builder.input("x", (2, 64))
        w = builder.weight("shared", (64, 32))
        y1 = builder.matmul(x, 32, name="m1", weight_name=w)
        y2 = builder.matmul(x, 32, name="m2", weight_name=w)
        assert builder.graph.op("m1").inputs[1] == "shared"
        assert builder.graph.op("m2").inputs[1] == "shared"
        assert builder.shape(y1) == builder.shape(y2)

    def test_einsum_shape_and_attrs(self, builder):
        a = builder.input("a", (2, 4, 16, 8))
        b = builder.activation_tensor("b", (2, 4, 16, 8))
        s = builder.einsum(a, b, (2, 4, 16, 16), contracting_dim=8, name="scores")
        assert builder.shape(s) == (2, 4, 16, 16)
        assert builder.graph.op("scores").attrs["contracting_dim"] == 8

    def test_softmax_and_activation_preserve_shape(self, builder):
        x = builder.input("x", (2, 16))
        assert builder.shape(builder.softmax(x)) == (2, 16)
        assert builder.shape(builder.activation(x, "gelu")) == (2, 16)

    def test_layernorm_adds_scale_and_shift(self, builder):
        x = builder.input("x", (2, 16))
        builder.layernorm(x, name="ln")
        assert builder.graph.tensor("ln.scale").shape == (16,)
        assert builder.graph.tensor("ln.shift").shape == (16,)

    def test_add_and_multiply(self, builder):
        a = builder.input("a", (2, 16))
        b = builder.activation_tensor("b", (2, 16))
        assert builder.shape(builder.add(a, b)) == (2, 16)
        assert builder.shape(builder.multiply(a, b)) == (2, 16)

    def test_reduce_mean_collapses_spatial(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        assert builder.shape(builder.reduce_mean(x)) == (2, 16)
        assert builder.shape(builder.reduce_mean(x, keep_spatial=True)) == (2, 1, 1, 16)

    def test_reshape(self, builder):
        x = builder.input("x", (2, 8, 8, 16))
        assert builder.shape(builder.reshape(x, (2, 64, 16))) == (2, 64, 16)


class TestFinish:
    def test_finish_marks_outputs_and_validates(self, builder):
        x = builder.input("x", (2, 16))
        y = builder.matmul(x, 4)
        graph = builder.finish(outputs=[y])
        assert graph.output_names == [y]

    def test_unique_names_are_generated(self, builder):
        x = builder.input("x", (2, 16))
        a = builder.activation(x)
        b = builder.activation(x)
        assert a != b
