"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.problem import geometric_mean
from repro.fusion.fast_fusion import FastFusionOptimizer, RegionStats
from repro.fusion.ilp import BranchAndBoundSolver, IlpProblem
from repro.hardware.datapath import DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace
from repro.mapping.dataflow import Dataflow, spatial_mapping
from repro.mapping.loopnest import MatrixProblem
from repro.mapping.padding import pad_problem
from repro.mapping.tiling import Tiling, estimate_traffic
from repro.search.pareto import ParetoFront, dominates

_SPACE = DatapathSearchSpace()

pow2 = lambda lo, hi: st.sampled_from([2**i for i in range(lo, hi + 1)])


def matrix_problems():
    return st.builds(
        lambda m, n, k, inst, dw: MatrixProblem(
            m=m, n=n, k=k, instances=inst,
            stationary_is_weight=not dw, is_depthwise=dw,
            input_bytes=m * k * 2 * inst,
            stationary_bytes=k * n * 2 * inst,
            output_bytes=m * n * 2 * inst,
        ),
        m=st.integers(1, 100_000),
        n=st.integers(1, 4096),
        k=st.integers(1, 4096),
        inst=st.integers(1, 64),
        dw=st.booleans(),
    )


class TestMappingProperties:
    @given(problem=matrix_problems(), ax=pow2(0, 8), ay=pow2(0, 8),
           dataflow=st.sampled_from(list(Dataflow)))
    @settings(max_examples=60, deadline=None)
    def test_spatial_mapping_utilization_bounded(self, problem, ax, ay, dataflow):
        mapping = spatial_mapping(problem, ax, ay, dataflow)
        assert 0.0 < mapping.quantization_efficiency <= 1.0
        assert 0.0 < mapping.latch_efficiency <= 1.0
        assert 0.0 < mapping.utilization <= 1.0
        assert mapping.cycles_per_instance > 0

    @given(problem=matrix_problems(), ax=pow2(2, 7), ay=pow2(2, 7))
    @settings(max_examples=60, deadline=None)
    def test_padding_never_shrinks_problem(self, problem, ax, ay):
        decision = pad_problem(problem, ax, ay)
        assert decision.problem.n >= problem.n
        assert decision.problem.k >= problem.k
        assert decision.extra_flops >= 0
        assert decision.problem.flops == problem.flops + decision.extra_flops

    @given(problem=matrix_problems(), capacity=st.integers(1024, 1 << 28))
    @settings(max_examples=60, deadline=None)
    def test_traffic_at_least_compulsory(self, problem, capacity):
        """DRAM traffic can never fall below the compulsory (cold) traffic."""
        tiling = Tiling(
            m_tile=min(problem.m, 256), n_tile=min(problem.n, 64), k_tile=min(problem.k, 64)
        )
        traffic, _ = estimate_traffic(problem, tiling, capacity)
        assert traffic.total_bytes >= problem.total_bytes - 1e-6

    @given(problem=matrix_problems())
    @settings(max_examples=40, deadline=None)
    def test_bigger_capacity_never_increases_traffic(self, problem):
        tiling = Tiling(
            m_tile=min(problem.m, 128), n_tile=min(problem.n, 32), k_tile=min(problem.k, 32)
        )
        small, _ = estimate_traffic(problem, tiling, 64 * 1024)
        large, _ = estimate_traffic(problem, tiling, 1 << 30)
        assert large.total_bytes <= small.total_bytes + 1e-6


class TestSearchSpaceProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_sampled_configs_always_valid(self, seed):
        rng = np.random.default_rng(seed)
        params = _SPACE.sample(rng)
        config = _SPACE.to_config(params)
        assert isinstance(config, DatapathConfig)
        assert config.peak_matrix_flops > 0

    @given(seed=st.integers(0, 10_000), mutations=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_mutation_stays_in_space(self, seed, mutations):
        rng = np.random.default_rng(seed)
        params = _SPACE.sample(rng)
        mutated = _SPACE.mutate(params, rng, num_mutations=mutations)
        for spec in _SPACE.specs:
            assert mutated[spec.name] in spec.choices

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_identity(self, seed):
        rng = np.random.default_rng(seed)
        params = _SPACE.sample(rng)
        assert _SPACE.decode(_SPACE.encode(params)) == params


class TestParetoProperties:
    @given(
        points=st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_front_points_mutually_non_dominated(self, points):
        front = ParetoFront()
        for p in points:
            front.add(p)
        frontier = front.points
        for a in frontier:
            for b in frontier:
                if a is not b:
                    assert not dominates(a.objectives, b.objectives)

    @given(
        points=st.lists(
            st.tuples(st.floats(0.1, 100), st.floats(0.1, 100)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_dominated_by_or_on_front(self, points):
        front = ParetoFront()
        for p in points:
            front.add(p)
        for point in front.all_points:
            on_front = any(point.objectives == f.objectives for f in front.points)
            dominated = any(
                dominates(f.objectives, point.objectives) for f in front.points
            )
            assert on_front or dominated


class TestFusionProperties:
    @given(
        num_regions=st.integers(2, 12),
        capacity=st.integers(0, 4000),
        act_bytes=st.integers(10, 800),
        dram_cycles=st.floats(0.5, 50.0),
        busy=st.floats(0.5, 200.0),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_greedy_fusion_never_slows_down_and_respects_capacity(
        self, num_regions, capacity, act_bytes, dram_cycles, busy
    ):
        regions = []
        for i in range(num_regions):
            t_max = busy + 3 * dram_cycles
            regions.append(
                RegionStats(
                    index=i, name=f"r{i}", busy_cycles=busy, t_max_cycles=t_max,
                    input_dram_cycles=dram_cycles, weight_dram_cycles=dram_cycles,
                    output_dram_cycles=dram_cycles,
                    input_bytes=act_bytes, weight_bytes=act_bytes // 2, output_bytes=act_bytes,
                    predecessor=i - 1 if i > 0 else None,
                    is_graph_output=(i == num_regions - 1),
                )
            )
        result = FastFusionOptimizer(gm_capacity_bytes=capacity, solver="greedy").optimize(regions)
        assert result.total_cycles_post <= result.total_cycles_pre + 1e-6
        weight_total = sum(
            r.weight_bytes for r, d in zip(regions, result.decisions) if d.pin_weights
        )
        for region, decision in zip(regions, result.decisions):
            usage = weight_total + region.blocking_gm_bytes
            if decision.pin_input:
                usage += region.input_bytes
            if decision.pin_output:
                usage += region.output_bytes
            if capacity > 0:
                assert usage <= capacity + 1e-6
        for region, cycles in zip(regions, result.region_cycles):
            assert cycles >= region.t_min_cycles - 1e-9


class TestIlpProperties:
    @given(
        values=st.lists(st.integers(1, 30), min_size=2, max_size=10),
        weights_seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_branch_and_bound_matches_brute_force(self, values, weights_seed):
        rng = np.random.default_rng(weights_seed)
        n = len(values)
        weights = rng.integers(1, 10, size=n).astype(float)
        capacity = float(weights.sum()) * 0.5
        problem = IlpProblem(
            objective=-np.asarray(values, dtype=float),
            constraint_matrix=weights.reshape(1, n),
            constraint_bounds=np.array([capacity]),
            integer_mask=np.ones(n, dtype=bool),
            lower_bounds=np.zeros(n),
            upper_bounds=np.ones(n),
        )
        solution = BranchAndBoundSolver(max_nodes=4000).solve(problem)
        best = 0.0
        for mask in range(1 << n):
            chosen = [(mask >> i) & 1 for i in range(n)]
            if float(np.dot(chosen, weights)) <= capacity:
                best = max(best, float(np.dot(chosen, values)))
        assert -solution.objective_value == pytest.approx(best, abs=1e-6)


class TestMiscProperties:
    @given(values=st.lists(st.floats(0.01, 1e6), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_geometric_mean_between_min_and_max(self, values):
        gm = geometric_mean(values)
        tolerance = 1e-9 * max(values)
        assert min(values) - tolerance <= gm <= max(values) + tolerance

    @given(
        a=st.tuples(st.floats(0, 10), st.floats(0, 10)),
        b=st.tuples(st.floats(0, 10), st.floats(0, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_dominance_is_antisymmetric(self, a, b):
        assume(a != b)
        assert not (dominates(a, b) and dominates(b, a))
