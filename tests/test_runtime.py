"""Tests for the parallel search runtime: executors, batching, cache, checkpoint."""

import json
import math

import pytest

import repro.core.trial as trial_module
from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator, clear_graph_cache
from repro.hardware.search_space import DatapathSearchSpace
from repro.hardware.tpu import EvaluationConstraints
from repro.reporting.serialization import (
    params_from_jsonable,
    params_to_jsonable,
    trial_metrics_from_dict,
    trial_metrics_to_dict,
)
from repro.runtime import (
    BatchedOptimizer,
    ParallelExecutor,
    ProgressBus,
    SearchCheckpoint,
    SerialExecutor,
    TrialCache,
    make_executor,
    problem_fingerprint,
    proposal_key,
)
from repro.runtime.progress import (
    CACHE_HIT,
    SEARCH_FINISHED,
    SEARCH_STARTED,
    TRIAL_FINISHED,
    ProgressPrinter,
)
from repro.search import RandomSearchOptimizer


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _history_dicts(result):
    return [trial_metrics_to_dict(m) for m in result.history]


class CountingEvaluator(TrialEvaluator):
    """Evaluator that counts evaluate_params calls (serial executor only)."""

    def __init__(self, problem):
        super().__init__(problem)
        self.calls = 0

    def evaluate_params(self, params, space):
        self.calls += 1
        return super().evaluate_params(params, space)


# ---------------------------------------------------------------------------
class TestExecutors:
    def test_parallel_reproduces_serial_history_bitwise(self):
        serial = FASTSearch(_problem(), optimizer="lcs", seed=7).run(16, batch_size=4)
        with ParallelExecutor(num_workers=2) as executor:
            parallel = FASTSearch(
                _problem(), optimizer="lcs", seed=7, executor=executor
            ).run(16, batch_size=4)
        assert _history_dicts(serial) == _history_dicts(parallel)
        assert serial.best_params == parallel.best_params
        assert serial.best_score_curve == parallel.best_score_curve

    def test_batch_size_one_matches_legacy_loop(self):
        a = FASTSearch(_problem(), optimizer="random", seed=2).run(8)
        b = FASTSearch(_problem(), optimizer="random", seed=2).run(8, batch_size=1)
        assert _history_dicts(a) == _history_dicts(b)

    def test_serial_executor_preserves_order(self):
        space = DatapathSearchSpace()
        evaluator = TrialEvaluator(_problem())
        optimizer = RandomSearchOptimizer(space, seed=0)
        batch = [optimizer.ask() for _ in range(4)]
        results = SerialExecutor().evaluate_batch(evaluator, space, batch)
        expected = [evaluator.evaluate_params(p, space) for p in batch]
        assert [trial_metrics_to_dict(m) for m in results] == [
            trial_metrics_to_dict(m) for m in expected
        ]

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.num_workers == 3
        parallel.close()

    def test_parallel_executor_empty_batch(self):
        with ParallelExecutor(num_workers=2) as executor:
            assert executor.evaluate_batch(TrialEvaluator(_problem()), DatapathSearchSpace(), []) == []

    def test_reused_executor_tracks_evaluator_changes(self):
        """One executor across searches with different problems must not
        keep evaluating with the first search's (stale) evaluator."""
        other_problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.THROUGHPUT)
        with ParallelExecutor(num_workers=2) as executor:
            FASTSearch(_problem(), optimizer="random", seed=6, executor=executor).run(
                4, batch_size=2
            )
            reused = FASTSearch(
                other_problem, optimizer="random", seed=6, executor=executor
            ).run(4, batch_size=2)
        fresh = FASTSearch(other_problem, optimizer="random", seed=6).run(4, batch_size=2)
        assert _history_dicts(reused) == _history_dicts(fresh)


# ---------------------------------------------------------------------------
class TestBatchedOptimizer:
    def test_ask_batch_deduplicates_proposals(self):
        space = DatapathSearchSpace()

        class StuckOptimizer(RandomSearchOptimizer):
            """Always proposes the same configuration."""

            def ask(self):
                return dict(self.fixed)

        optimizer = StuckOptimizer(space, seed=0)
        optimizer.fixed = space.sample(optimizer.rng)
        batched = BatchedOptimizer(optimizer, space)
        proposals = batched.ask_batch(4)
        keys = {proposal_key(p) for p in proposals}
        assert len(keys) == 4
        assert batched.num_duplicates_avoided > 0

    def test_ask_batch_avoids_previous_batches(self):
        space = DatapathSearchSpace()
        optimizer = RandomSearchOptimizer(space, seed=0)
        batched = BatchedOptimizer(optimizer, space)
        first = batched.ask_batch(6)
        second = batched.ask_batch(6)
        keys = [proposal_key(p) for p in first + second]
        assert len(set(keys)) == len(keys)

    def test_tell_batch_replays_in_proposal_order(self):
        space = DatapathSearchSpace()
        optimizer = RandomSearchOptimizer(space, seed=1)
        batched = BatchedOptimizer(optimizer, space)
        proposals = batched.ask_batch(3)
        batched.tell_batch(proposals, [(1.0, True), (2.0, False), (3.0, True)])
        assert [obs.objective for obs in optimizer.observations] == [1.0, 2.0, 3.0]
        assert [obs.feasible for obs in optimizer.observations] == [True, False, True]
        assert [obs.params for obs in optimizer.observations] == proposals


# ---------------------------------------------------------------------------
class TestTrialCache:
    def test_warm_cache_short_circuits_simulation(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cold = FASTSearch(
            _problem(), optimizer="random", seed=3, cache=TrialCache(path)
        ).run(10, batch_size=2)

        evaluator = CountingEvaluator(_problem())
        warm_cache = TrialCache(path)
        warm = FASTSearch(
            _problem(),
            optimizer="random",
            seed=3,
            evaluator=evaluator,
            cache=warm_cache,
        ).run(10, batch_size=2)

        assert evaluator.calls == 0  # every trial served from the cache
        assert warm.runtime.cache_hits == 10
        assert warm.runtime.trials_evaluated == 0
        assert _history_dicts(cold) == _history_dicts(warm)

    def test_in_memory_hits_within_one_run(self):
        cache = TrialCache()
        space = DatapathSearchSpace()
        evaluator = TrialEvaluator(_problem())
        fingerprint = problem_fingerprint(_problem(), evaluator, space)
        params = space.from_config(
            __import__("repro.core.designs", fromlist=["FAST_SMALL"]).FAST_SMALL
        )
        key = cache.key_for(params, fingerprint)
        assert cache.get(key) is None
        cache.put(key, evaluator.evaluate_params(params, space))
        assert cache.get(key) is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_fingerprint_isolates_different_problems(self):
        space = DatapathSearchSpace()
        evaluator = TrialEvaluator(_problem())
        other = SearchProblem(["efficientnet-b0"], ObjectiveKind.THROUGHPUT)
        fp_a = problem_fingerprint(_problem(), evaluator, space)
        fp_b = problem_fingerprint(other, TrialEvaluator(other), space)
        assert fp_a != fp_b
        cache = TrialCache()
        params = space.sample(RandomSearchOptimizer(space, seed=0).rng)
        assert cache.key_for(params, fp_a) != cache.key_for(params, fp_b)

    def test_lru_eviction_bounds_memory(self):
        cache = TrialCache(max_memory_entries=2)
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        metrics = evaluator.evaluate_params(
            space.from_config(
                __import__("repro.core.designs", fromlist=["FAST_SMALL"]).FAST_SMALL
            ),
            space,
        )
        for key in ("a", "b", "c"):
            cache.put(key, metrics)
        assert len(cache._memory) == 2
        assert "a" not in cache and "c" in cache

    def test_corrupt_disk_lines_are_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text('not json\n{"key": "x"}\n')
        cache = TrialCache(path)
        assert cache.stats.disk_entries_loaded == 0


# ---------------------------------------------------------------------------
class TestCheckpoint:
    @pytest.mark.parametrize(
        "optimizer", ["random", "lcs", "bayesian", "annealing", "coordinate", "safe:annealing"]
    )
    def test_resume_matches_uninterrupted_run(self, tmp_path, optimizer):
        full = FASTSearch(_problem(), optimizer=optimizer, seed=5).run(20, batch_size=4)

        path = tmp_path / "search.ckpt"
        FASTSearch(
            _problem(),
            optimizer=optimizer,
            seed=5,
            checkpoint=SearchCheckpoint(path, interval=4),
        ).run(12, batch_size=4)
        resumed = FASTSearch(
            _problem(),
            optimizer=optimizer,
            seed=5,
            checkpoint=SearchCheckpoint(path, interval=4),
        ).run(20, batch_size=4, resume=True)

        assert resumed.runtime.resumed_trials == 12
        assert _history_dicts(full) == _history_dicts(resumed)
        assert full.best_params == resumed.best_params
        assert full.best_score_curve == resumed.best_score_curve

    def test_resume_requires_checkpoint_manager(self):
        with pytest.raises(ValueError):
            FASTSearch(_problem(), optimizer="random", seed=0).run(4, resume=True)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "search.ckpt"
        FASTSearch(
            _problem(), optimizer="random", seed=0, checkpoint=SearchCheckpoint(path)
        ).run(4)
        other = SearchProblem(["efficientnet-b0"], ObjectiveKind.THROUGHPUT)
        with pytest.raises(ValueError):
            FASTSearch(
                other, optimizer="random", seed=0, checkpoint=SearchCheckpoint(path)
            ).run(8, resume=True)

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        path = tmp_path / "search.ckpt"
        FASTSearch(
            _problem(), optimizer="random", seed=1, checkpoint=SearchCheckpoint(path, interval=2)
        ).run(6, batch_size=2)
        payload = json.loads(path.read_text())
        assert payload["num_completed"] == 6
        assert len(payload["proposals"]) == 6
        assert len(payload["history"]) == 6
        assert len(payload["optimizer"]["observations"]) == 6


# ---------------------------------------------------------------------------
class TestProgress:
    def test_events_emitted_during_search(self):
        bus = ProgressBus()
        events = []
        bus.subscribe(lambda event: events.append(event))
        FASTSearch(_problem(), optimizer="random", seed=0, progress=bus).run(
            4, batch_size=2
        )
        kinds = [event.kind for event in events]
        assert kinds[0] == SEARCH_STARTED
        assert kinds[-1] == SEARCH_FINISHED
        assert kinds.count(TRIAL_FINISHED) == 4

    def test_cache_hit_events(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        FASTSearch(
            _problem(), optimizer="random", seed=4, cache=TrialCache(path)
        ).run(6, batch_size=3)
        bus = ProgressBus()
        events = []
        bus.subscribe(lambda event: events.append(event))
        FASTSearch(
            _problem(), optimizer="random", seed=4, cache=TrialCache(path), progress=bus
        ).run(6, batch_size=3)
        assert sum(1 for event in events if event.kind == CACHE_HIT) == 6

    def test_subscriber_errors_do_not_abort_search(self):
        bus = ProgressBus()

        def broken(_event):
            raise RuntimeError("boom")

        bus.subscribe(broken)
        result = FASTSearch(_problem(), optimizer="random", seed=0, progress=bus).run(3)
        assert result.num_trials == 3
        assert bus.errors

    def test_progress_printer_formats_lines(self, capsys):
        bus = ProgressBus()
        bus.subscribe(ProgressPrinter())
        FASTSearch(_problem(), optimizer="random", seed=0, progress=bus).run(3)
        out = capsys.readouterr().out
        assert "search:" in out and "done:" in out


# ---------------------------------------------------------------------------
class TestGraphCache:
    def test_clear_graph_cache(self):
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        evaluator.evaluate_params(
            space.from_config(
                __import__("repro.core.designs", fromlist=["FAST_SMALL"]).FAST_SMALL
            ),
            space,
        )
        assert trial_module._GRAPH_CACHE
        clear_graph_cache()
        assert not trial_module._GRAPH_CACHE

    def test_cached_graphs_are_reused_by_identity(self):
        # Graphs are immutable data: workers inherit warm entries through
        # fork and every same-process caller gets the identical object.
        first = trial_module._cached_graph("efficientnet-b0", 1)
        again = trial_module._cached_graph("efficientnet-b0", 1)
        assert first is again
        clear_graph_cache()


# ---------------------------------------------------------------------------
class TestBestScoreAndSerialization:
    def test_best_score_nan_when_nothing_feasible(self):
        problem = SearchProblem(
            ["efficientnet-b0"],
            constraints=EvaluationConstraints(max_area_mm2=1.0, max_tdp_w=1.0),
        )
        result = FASTSearch(problem, optimizer="random", seed=0).run(3)
        assert result.best_metrics is None
        assert math.isnan(result.best_score)

    def test_search_result_serializes_nan_best_as_null(self):
        from repro.reporting.serialization import search_result_to_dict

        problem = SearchProblem(
            ["efficientnet-b0"],
            constraints=EvaluationConstraints(max_area_mm2=1.0, max_tdp_w=1.0),
        )
        result = FASTSearch(problem, optimizer="random", seed=0).run(3)
        payload = search_result_to_dict(result)
        assert payload["best_score"] is None
        json.dumps(payload)  # strictly JSON-compatible

    def test_runtime_stats_serialized(self):
        from repro.reporting.serialization import search_result_to_dict

        result = FASTSearch(_problem(), optimizer="random", seed=0).run(4, batch_size=2)
        payload = search_result_to_dict(result)
        assert payload["runtime"]["batches"] == 2
        assert payload["runtime"]["trials_evaluated"] == 4

    def test_params_jsonable_round_trip(self):
        space = DatapathSearchSpace()
        params = space.sample(RandomSearchOptimizer(space, seed=9).rng)
        encoded = params_to_jsonable(params)
        json.dumps(encoded)
        assert params_from_jsonable(encoded, space) == params

    def test_trial_metrics_round_trip(self):
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        metrics = evaluator.evaluate_params(
            space.from_config(
                __import__("repro.core.designs", fromlist=["FAST_SMALL"]).FAST_SMALL
            ),
            space,
        )
        data = trial_metrics_to_dict(metrics)
        restored = trial_metrics_from_dict(data)
        assert trial_metrics_to_dict(restored) == data
