"""Tests for the datapath configuration and its derived quantities."""

import pytest

from repro.hardware.datapath import (
    BufferConfig,
    DatapathConfig,
    DatapathValidationError,
    L2Config,
    MemoryTechnology,
)


class TestValidation:
    def test_default_config_is_valid(self):
        DatapathConfig()

    @pytest.mark.parametrize("value", [0, 3, 257, 512])
    def test_rejects_bad_pe_counts(self, value):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(pes_x_dim=value)

    @pytest.mark.parametrize("value", [0, 3, 12, 300])
    def test_rejects_bad_systolic_dims(self, value):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(systolic_array_x=value)

    def test_rejects_bad_vector_multiplier(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(vector_unit_multiplier=32)

    def test_rejects_bad_l1_size(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(l1_input_buffer_kib=3)

    def test_rejects_bad_global_buffer(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(l3_global_buffer_mib=3)
        with pytest.raises(DatapathValidationError):
            DatapathConfig(l3_global_buffer_mib=512)

    def test_zero_global_buffer_allowed(self):
        assert DatapathConfig(l3_global_buffer_mib=0).global_buffer_bytes == 0

    def test_rejects_bad_channels(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(gddr6_channels=16)

    def test_rejects_bad_clock(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(clock_ghz=0.0)

    def test_rejects_bad_core_count(self):
        with pytest.raises(DatapathValidationError):
            DatapathConfig(num_cores=0)


class TestDerivedQuantities:
    def test_pe_and_mac_counts(self):
        config = DatapathConfig(pes_x_dim=4, pes_y_dim=2, systolic_array_x=8, systolic_array_y=16)
        assert config.num_pes == 8
        assert config.macs_per_pe == 128
        assert config.total_macs == 1024

    def test_multi_core_scales_totals(self):
        single = DatapathConfig(num_cores=1)
        dual = single.evolve(num_cores=2)
        assert dual.total_pes == 2 * single.total_pes
        assert dual.peak_matrix_flops == pytest.approx(2 * single.peak_matrix_flops)

    def test_peak_flops_formula(self):
        config = DatapathConfig(
            pes_x_dim=1, pes_y_dim=1, systolic_array_x=16, systolic_array_y=16, clock_ghz=1.0
        )
        assert config.peak_matrix_flops == pytest.approx(2 * 256 * 1e9)

    def test_vpu_lanes(self):
        config = DatapathConfig(systolic_array_x=32, vector_unit_multiplier=4)
        assert config.vpu_lanes_per_pe == 128

    def test_gddr6_bandwidth(self):
        config = DatapathConfig(gddr6_channels=8, memory_technology=MemoryTechnology.GDDR6)
        assert config.dram_bandwidth_bytes_per_s == pytest.approx(448e9)

    def test_hbm_bandwidth(self):
        config = DatapathConfig(gddr6_channels=2, memory_technology=MemoryTechnology.HBM2)
        assert config.dram_bandwidth_bytes_per_s == pytest.approx(900e9)

    def test_dram_bytes_per_cycle(self):
        config = DatapathConfig(gddr6_channels=8, clock_ghz=1.0)
        assert config.dram_bytes_per_cycle == pytest.approx(448.0)

    def test_l1_capacity(self):
        config = DatapathConfig(
            pes_x_dim=2, pes_y_dim=2,
            l1_input_buffer_kib=8, l1_weight_buffer_kib=4, l1_output_buffer_kib=4,
        )
        assert config.l1_bytes_per_pe == 16 * 1024
        assert config.l1_total_bytes == 4 * 16 * 1024

    def test_l2_disabled_has_zero_capacity(self):
        config = DatapathConfig(l2_buffer_config=L2Config.DISABLED)
        assert config.l2_bytes_per_pe == 0

    def test_l2_enabled_uses_multipliers(self):
        config = DatapathConfig(
            l2_buffer_config=L2Config.SHARED,
            l1_input_buffer_kib=4, l1_weight_buffer_kib=4, l1_output_buffer_kib=4,
            l2_input_buffer_multiplier=4, l2_weight_buffer_multiplier=4, l2_output_buffer_multiplier=4,
        )
        assert config.l2_bytes_per_pe == 3 * 4 * 4 * 1024

    def test_ridgepoint_matches_ratio(self):
        config = DatapathConfig()
        expected = config.peak_matrix_flops / config.dram_bandwidth_bytes_per_s
        assert config.operational_intensity_ridgepoint == pytest.approx(expected)

    def test_evolve_replaces_fields(self):
        config = DatapathConfig(l3_global_buffer_mib=16)
        changed = config.evolve(l3_global_buffer_mib=128)
        assert changed.l3_global_buffer_mib == 128
        assert config.l3_global_buffer_mib == 16

    def test_describe_contains_key_fields(self):
        description = DatapathConfig().describe()
        for key in ("num_pes", "systolic_array", "peak_tflops", "global_buffer_mib"):
            assert key in description

    def test_memory_technology_properties(self):
        assert MemoryTechnology.GDDR6.bandwidth_per_channel_gbps < MemoryTechnology.HBM2.bandwidth_per_channel_gbps
        assert MemoryTechnology.GDDR6.energy_per_byte_pj > MemoryTechnology.HBM2.energy_per_byte_pj
