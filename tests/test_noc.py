"""Tests for the mesh network-on-chip model."""

from __future__ import annotations

import pytest

from repro.core.designs import FAST_LARGE, TPU_V3
from repro.hardware.datapath import DatapathConfig
from repro.hardware.noc import MeshNocModel, NocParameters


@pytest.fixture(scope="module")
def model():
    return MeshNocModel()


def grid(pes_x, pes_y):
    return DatapathConfig(pes_x_dim=pes_x, pes_y_dim=pes_y)


class TestTopology:
    def test_router_count_matches_pe_grid(self, model):
        noc = model.characterize(grid(8, 4))
        assert noc.num_routers == 32
        assert noc.mesh_x == 8 and noc.mesh_y == 4

    def test_link_count_of_mesh(self, model):
        # A 3x... mesh is not expressible (powers of two only); use 4x2:
        # links = 4*(2-1) + 2*(4-1) = 10.
        noc = model.characterize(grid(4, 2))
        assert noc.num_links == 10

    def test_single_pe_degenerates_gracefully(self, model):
        noc = model.characterize(grid(1, 1))
        assert noc.num_routers == 1
        assert noc.num_links == 0
        assert noc.average_hops == 0.0

    def test_as_dict_roundtrip_keys(self, model):
        data = model.characterize(FAST_LARGE).as_dict()
        assert data["num_routers"] == FAST_LARGE.num_pes
        assert data["area_mm2"] > 0


class TestScaling:
    def test_area_grows_with_grid_size(self, model):
        small = model.characterize(grid(2, 2))
        large = model.characterize(grid(16, 16))
        assert large.area_mm2 > small.area_mm2
        assert large.static_power_w > small.static_power_w

    def test_bisection_bandwidth_scales_with_narrow_dimension(self, model):
        narrow = model.characterize(grid(16, 2))
        wide = model.characterize(grid(16, 16))
        assert wide.bisection_bandwidth_bytes_per_cycle > narrow.bisection_bandwidth_bytes_per_cycle

    def test_multi_core_multiplies_area(self, model):
        single = model.characterize(grid(4, 4))
        dual = model.characterize(grid(4, 4).evolve(num_cores=2))
        assert dual.area_mm2 == pytest.approx(2 * single.area_mm2)

    def test_energy_per_byte_grows_with_hop_count(self, model):
        small = model.characterize(grid(2, 2))
        large = model.characterize(grid(32, 32))
        assert large.energy_pj_per_byte > small.energy_pj_per_byte

    def test_noc_is_small_fraction_of_chip(self, model):
        """The mesh should not dominate die area for paper-scale designs."""
        from repro.hardware.area_power import AreaPowerModel

        for config in (TPU_V3, FAST_LARGE):
            noc_area = model.characterize(config).area_mm2
            chip_area = AreaPowerModel().area_mm2(config)
            assert noc_area < 0.1 * chip_area


class TestTrafficPatterns:
    def test_broadcast_at_least_unicast(self, model):
        config = grid(8, 8)
        assert model.broadcast_cycles(config, 4096) >= model.unicast_cycles(config, 4096)

    def test_serialization_dominates_large_payloads(self, model):
        config = grid(4, 4)
        small = model.broadcast_cycles(config, 64)
        large = model.broadcast_cycles(config, 64 * 1024)
        assert large > 100 * small / 10  # grows roughly with payload size

    def test_reduction_scales_with_mesh_height(self, model):
        short = model.reduction_cycles(grid(8, 2), 256)
        tall = model.reduction_cycles(grid(8, 32), 256)
        assert tall > short

    def test_distribution_bound_flags_oversubscription(self, model):
        config = grid(16, 16)
        noc = model.characterize(config)
        fine = model.distribution_bandwidth_bound(config, noc.bisection_bandwidth_bytes_per_cycle / 2)
        over = model.distribution_bandwidth_bound(config, noc.bisection_bandwidth_bytes_per_cycle * 4)
        assert fine == 1.0
        assert over == pytest.approx(4.0)

    def test_dynamic_power_positive_and_monotone(self, model):
        config = grid(8, 8)
        low = model.dynamic_power_w(config, 1e9)
        high = model.dynamic_power_w(config, 1e11)
        assert 0 < low < high


class TestParameters:
    def test_invalid_link_width_rejected(self):
        with pytest.raises(ValueError):
            NocParameters(link_width_bytes=0)

    def test_wider_links_raise_bisection_bandwidth(self):
        narrow = MeshNocModel(NocParameters(link_width_bytes=32)).characterize(grid(8, 8))
        wide = MeshNocModel(NocParameters(link_width_bytes=128)).characterize(grid(8, 8))
        assert wide.bisection_bandwidth_bytes_per_cycle > narrow.bisection_bandwidth_bytes_per_cycle
