"""Tests for the workload graph IR."""

import pytest

from repro.workloads.graph import (
    DType,
    Graph,
    GraphValidationError,
    Operation,
    Tensor,
    TensorKind,
)
from repro.workloads.ops import OpType


def make_tensor(name, shape, kind=TensorKind.ACTIVATION, dtype=DType.BFLOAT16):
    return Tensor(name, tuple(shape), dtype, kind)


class TestTensor:
    def test_num_elements(self):
        assert make_tensor("t", (2, 3, 4)).num_elements == 24

    def test_scalar_shape_has_one_element(self):
        assert make_tensor("t", ()).num_elements == 1

    def test_size_bytes_bfloat16(self):
        assert make_tensor("t", (8, 8)).size_bytes == 128

    def test_size_bytes_float32(self):
        assert make_tensor("t", (8, 8), dtype=DType.FLOAT32).size_bytes == 256

    def test_size_bytes_int8(self):
        assert make_tensor("t", (10,), dtype=DType.INT8).size_bytes == 10

    def test_rejects_empty_name(self):
        with pytest.raises(GraphValidationError):
            Tensor("", (2,))

    def test_rejects_non_positive_dims(self):
        with pytest.raises(GraphValidationError):
            Tensor("t", (2, 0))

    def test_with_batch_rescales_activations(self):
        t = make_tensor("t", (4, 8, 8, 3))
        assert t.with_batch(16).shape == (16, 8, 8, 3)

    def test_with_batch_leaves_weights_unchanged(self):
        w = make_tensor("w", (3, 3, 8, 16), kind=TensorKind.WEIGHT)
        assert w.with_batch(16).shape == (3, 3, 8, 16)

    def test_dtype_bytes(self):
        assert DType.BFLOAT16.bytes == 2
        assert DType.FLOAT32.bytes == 4
        assert DType.INT8.bytes == 1


class TestGraphConstruction:
    def _simple_graph(self):
        g = Graph("g", batch_size=1)
        g.add_tensor(make_tensor("x", (1, 8)))
        g.add_tensor(make_tensor("w", (8, 4), TensorKind.WEIGHT))
        g.add_tensor(make_tensor("y", (1, 4)))
        g.add_op(
            Operation("fc", OpType.MATMUL, ["x", "w"], ["y"], {"contracting_dim": 8})
        )
        g.mark_input("x")
        g.mark_output("y")
        return g

    def test_len_counts_ops(self):
        assert len(self._simple_graph()) == 1

    def test_duplicate_tensor_rejected(self):
        g = self._simple_graph()
        with pytest.raises(GraphValidationError):
            g.add_tensor(make_tensor("x", (1, 8)))

    def test_duplicate_op_rejected(self):
        g = self._simple_graph()
        with pytest.raises(GraphValidationError):
            g.add_op(Operation("fc", OpType.MATMUL, ["x", "w"], ["y"], {}))

    def test_unknown_tensor_reference_rejected(self):
        g = self._simple_graph()
        with pytest.raises(GraphValidationError):
            g.add_op(Operation("bad", OpType.MATMUL, ["missing"], ["y"], {}))

    def test_double_producer_rejected(self):
        g = self._simple_graph()
        g.add_tensor(make_tensor("x2", (1, 8)))
        with pytest.raises(GraphValidationError):
            g.add_op(Operation("fc2", OpType.MATMUL, ["x2", "w"], ["y"], {"contracting_dim": 8}))

    def test_mark_unknown_input_rejected(self):
        g = self._simple_graph()
        with pytest.raises(GraphValidationError):
            g.mark_input("nope")

    def test_producer_and_consumers(self):
        g = self._simple_graph()
        assert g.producer("y").name == "fc"
        assert g.producer("x") is None
        assert [op.name for op in g.consumers("x")] == ["fc"]

    def test_validate_accepts_topological_order(self):
        self._simple_graph().validate()

    def test_tensor_lookup(self):
        g = self._simple_graph()
        assert g.tensor("w").kind is TensorKind.WEIGHT
        assert g.op("fc").op_type is OpType.MATMUL


class TestGraphAccounting:
    def test_total_flops_positive(self, tiny_graph):
        assert tiny_graph.total_flops() > 0

    def test_weight_bytes_counts_only_weights(self, tiny_graph):
        weights = [
            t for t in tiny_graph.tensors.values() if t.kind is TensorKind.WEIGHT
        ]
        assert tiny_graph.weight_bytes() == sum(t.size_bytes for t in weights)

    def test_max_working_set_at_least_largest_tensor(self, tiny_graph):
        largest = max(
            t.size_bytes
            for t in tiny_graph.tensors.values()
            if t.kind is TensorKind.ACTIVATION
        )
        assert tiny_graph.max_working_set_bytes() >= largest

    def test_matrix_flop_fraction_in_unit_interval(self, tiny_graph):
        fraction = tiny_graph.matrix_op_flop_fraction()
        assert 0.0 < fraction <= 1.0

    def test_flops_by_op_type_sums_to_total(self, tiny_graph):
        by_type = tiny_graph.flops_by_op_type()
        assert sum(by_type.values()) == tiny_graph.total_flops()

    def test_predecessors_and_successors(self, tiny_graph):
        conv2 = tiny_graph.op("conv2")
        preds = tiny_graph.predecessors(conv2)
        assert any(op.name == "relu1" for op in preds)
        succs = tiny_graph.successors(conv2)
        assert any(op.name == "residual" for op in succs)

    def test_summary_mentions_every_op(self, tiny_graph):
        text = tiny_graph.summary()
        for op in tiny_graph.ops:
            assert op.name in text


class TestGraphTransforms:
    def test_with_batch_size_scales_activations(self, tiny_graph):
        scaled = tiny_graph.with_batch_size(8)
        assert scaled.batch_size == 8
        assert scaled.tensor("images").shape[0] == 8
        # Weights are unchanged.
        assert scaled.weight_bytes() == tiny_graph.weight_bytes()

    def test_with_batch_size_scales_flops_linearly(self, tiny_graph):
        scaled = tiny_graph.with_batch_size(4)
        assert scaled.total_flops() == pytest.approx(
            2 * tiny_graph.total_flops(), rel=0.01
        )

    def test_with_batch_size_rejects_non_positive(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.with_batch_size(0)

    def test_with_batch_preserves_op_count(self, tiny_graph):
        assert len(tiny_graph.with_batch_size(3)) == len(tiny_graph)

    def test_subgraph_extracts_named_ops(self, tiny_graph):
        sub = tiny_graph.subgraph(["conv1", "relu1"])
        assert len(sub) == 2
        assert {op.name for op in sub.ops} == {"conv1", "relu1"}

    def test_subgraph_flops_less_than_total(self, tiny_graph):
        sub = tiny_graph.subgraph(["conv1"])
        assert 0 < sub.total_flops() < tiny_graph.total_flops()
