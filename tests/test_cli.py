"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--workload", "resnet50"])
        assert args.design == "tpu-v3"
        assert args.batch_size is None

    def test_search_accepts_repeated_workloads(self):
        args = build_parser().parse_args(
            ["search", "--workload", "resnet50", "--workload", "bert-seq128"]
        )
        assert args.workload == ["resnet50", "bert-seq128"]

    def test_search_runtime_defaults(self):
        args = build_parser().parse_args(["search", "--workload", "resnet50"])
        assert args.workers == 1
        assert args.batch_size == 8
        assert args.cache is None
        assert args.checkpoint is None
        assert args.resume is None
        assert not args.progress

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--workload", "resnet50"])
        assert args.shards == 4
        assert args.trials == 48
        assert args.shard_index is None
        assert args.merge is None
        assert args.mode == "seed"

    def test_cache_compact_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "compact"])
        args = build_parser().parse_args(["cache", "compact", "--cache", "x.jsonl"])
        assert args.cache == "x.jsonl"
        assert args.max_entries is None


class TestCommands:
    def test_list_designs(self, capsys):
        assert main(["list-designs"]) == 0
        out = capsys.readouterr().out
        assert "fast-large" in out and "tpu-v3" in out

    def test_simulate_small_workload(self, capsys):
        code = main(
            ["simulate", "--design", "fast-small", "--workload", "efficientnet-b0",
             "--batch-size", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput (QPS)" in out
        assert "Perf/TDP" in out

    def test_simulate_unknown_design_fails(self, capsys):
        assert main(["simulate", "--design", "gpu-v100", "--workload", "resnet50"]) == 1
        assert "unknown design" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "--workload", "efficientnet-b0"]) == 0
        out = capsys.readouterr().out
        assert "op intensity (no fusion)" in out
        assert "max working set" in out

    def test_roi(self, capsys):
        assert main(["roi", "--speedup", "3.9", "--volume", "4000"]) == 0
        out = capsys.readouterr().out
        assert "break-even volume" in out

    def test_reproduce_list(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig13" in out

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        assert "efficientnet-b0" in capsys.readouterr().out

    def test_reproduce_bad_option_format(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "table1", "--option", "badoption"])

    def test_search_writes_outputs(self, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        config_path = tmp_path / "design.json"
        code = main(
            [
                "search",
                "--workload", "efficientnet-b0",
                "--trials", "4",
                "--optimizer", "random",
                "--output", str(result_path),
                "--save-config", str(config_path),
            ]
        )
        out = capsys.readouterr().out
        # A 4-trial random search may find nothing feasible; both outcomes are
        # valid CLI behaviour, but the process must not crash.
        assert code in (0, 1)
        if code == 0:
            assert "Best design found" in out
            assert json.loads(result_path.read_text())["num_trials"] == 4
            assert config_path.exists()

    def test_search_op_cache_and_scalar_mapper_flags(self, tmp_path, capsys):
        store = tmp_path / "opcache.jsonl"
        code = main(
            [
                "search",
                "--workload", "mobilenet-v2",
                "--trials", "4",
                "--optimizer", "random",
                "--op-cache", str(store),
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()
        code = main(
            [
                "search",
                "--workload", "mobilenet-v2",
                "--trials", "4",
                "--optimizer", "random",
                "--scalar-mapper",
                "--no-op-cache",
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()

    def test_search_per_op_mapper_and_region_cache_flags(self, capsys):
        code = main(
            [
                "search",
                "--workload", "mobilenet-v2",
                "--trials", "4",
                "--optimizer", "random",
                "--per-op-mapper",
                "--no-region-cache",
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()

    def test_sweep_shared_op_cache_flag(self, tmp_path, capsys):
        store = tmp_path / "sweep-opcache.jsonl"
        code = main(
            [
                "sweep",
                "--workload", "mobilenet-v2",
                "--trials", "4",
                "--shards", "2",
                "--optimizer", "random",
                "--batch-size", "2",
                "--op-cache", str(store),
            ]
        )
        assert code in (0, 1)
        assert store.exists()
        capsys.readouterr()

    def test_profile_smoke_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--workload", "mobilenet-v2",
                "--trials", "4",
                "--batch-size", "2",
                "--output", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "vs scalar" in out
        assert "equivalence: all NumPy modes reproduced" in out
        payload = json.loads(out_path.read_text())
        assert payload["histories_match"] is True
        modes = [record["mode"] for record in payload["records"]]
        assert modes == [
            "scalar",
            "vectorized",
            "graph-batched",
            "graph-batched+region-cache",
            "graph-batched+op-cache",
            "trial-batched",
            "trial-batched+cupy",
            "trial-batched+torch",
            "parallel-2",
            "parallel-2+shared-cache",
        ]
        # Backend rows without the library installed are recorded as
        # skipped, never silently dropped or counted as failures.
        by_mode = {record["mode"]: record for record in payload["records"]}
        for name in ("cupy", "torch"):
            record = by_mode[f"trial-batched+{name}"]
            if record["skipped"]:
                assert name in record["skip_reason"]

    def test_sweep_smoke_golden_output(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--workload", "efficientnet-b0",
                "--trials", "8",
                "--shards", "2",
                "--optimizer", "random",
                "--batch-size", "4",
                "--cache", str(tmp_path / "cache.jsonl"),
                "--output", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        # A tiny random sweep may find nothing feasible; either way the
        # per-shard table and merged summary must render.
        assert code in (0, 1)
        assert "Shard" in out and "Best score" in out
        assert "Merged sweep" in out
        assert "unique trials       8" in out
        assert "duplicates removed" in out
        payload = json.loads(out_path.read_text())
        assert len(payload["shards"]) == 2
        assert payload["num_trials"] == 8
        # the shared cache produced one sidecar per shard
        assert sorted(p.name for p in tmp_path.glob("cache.jsonl.shard-*")) == [
            "cache.jsonl.shard-0", "cache.jsonl.shard-1",
        ]

    def test_sweep_shard_index_then_merge(self, tmp_path, capsys):
        shard_files = []
        for k in range(2):
            path = tmp_path / f"shard-{k}.json"
            code = main(
                [
                    "sweep",
                    "--workload", "efficientnet-b0",
                    "--trials", "8",
                    "--shards", "2",
                    "--shard-index", str(k),
                    "--optimizer", "random",
                    "--batch-size", "4",
                    "--output", str(path),
                ]
            )
            assert code == 0
            assert path.exists()
            shard_files.append(str(path))
        out = capsys.readouterr().out
        assert "Shard complete" in out

        code = main(["sweep", "--merge"] + shard_files)
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "Merged sweep" in out
        assert "unique trials       8" in out

    def test_sweep_requires_workload_or_merge(self, capsys):
        assert main(["sweep", "--trials", "4"]) == 1
        assert "--workload is required" in capsys.readouterr().out

    def test_sweep_rejects_bad_space_partition(self, capsys):
        base = ["sweep", "--workload", "efficientnet-b0", "--trials", "4",
                "--mode", "space"]
        assert main(base + ["--shards", "2", "--partition-axis", "nope"]) == 1
        assert "unknown partition axis" in capsys.readouterr().out
        assert main(base + ["--shards", "99", "--partition-axis", "l1_buffer_config"]) == 1
        assert "cannot split axis" in capsys.readouterr().out

    def test_cache_compact_golden_output(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.jsonl"
        code = main(
            [
                "search",
                "--workload", "efficientnet-b0",
                "--trials", "4",
                "--optimizer", "random",
                "--batch-size", "2",
                "--cache", str(cache_path),
            ]
        )
        assert code in (0, 1)
        capsys.readouterr()
        code = main(["cache", "compact", "--cache", str(cache_path), "--max-entries", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Cache compaction" in out
        assert "entries kept        2" in out
        assert "entries evicted     2" in out
        assert len(cache_path.read_text().splitlines()) == 2

    def test_cache_compact_missing_store_fails(self, tmp_path, capsys):
        code = main(["cache", "compact", "--cache", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "no cache store" in capsys.readouterr().out

    def test_search_parallel_cache_and_resume(self, tmp_path, capsys):
        cache_path = tmp_path / "cache.jsonl"
        ckpt_path = tmp_path / "search.ckpt"
        base = [
            "search",
            "--workload", "efficientnet-b0",
            "--optimizer", "lcs",
            "--seed", "0",
            "--workers", "2",
            "--batch-size", "4",
            "--cache", str(cache_path),
        ]
        code = main(base + ["--trials", "8", "--checkpoint", str(ckpt_path), "--progress"])
        assert code in (0, 1)
        assert ckpt_path.exists()
        capsys.readouterr()
        # Resume to a larger budget; earlier trials are restored, later ones
        # come from the checkpointed optimizer state (and hit the cache only
        # if re-proposed).
        code = main(base + ["--trials", "12", "--resume", str(ckpt_path)])
        assert code in (0, 1)
        out = capsys.readouterr().out
        if code == 0:
            assert "trials/sec" in out
            assert "resumed trials" in out
