"""Integration tests: cross-module behaviour that mirrors the paper's findings.

These tests exercise the full stack (workload -> compiler -> mapper ->
simulator -> fusion -> economics) and assert the *shape* of the paper's
headline results rather than exact numbers.
"""

import pytest

from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.economics.roi import RoiModel
from repro.hardware.area_power import AreaPowerModel
from repro.simulator.engine import SimulationOptions, Simulator
from repro.workloads.ops import OpType


@pytest.fixture(scope="module")
def area_power():
    return AreaPowerModel()


def perf_per_tdp(result, config, area_power):
    return result.qps / area_power.tdp_w(config)


class TestHeadlineShapes:
    def test_fast_large_beats_tpu_on_efficientnet_b7_perf_per_tdp(self, area_power):
        """Table 5 / Figure 10: FAST-Large improves Perf/TDP on EfficientNet-B7."""
        tpu = Simulator(TPU_V3).simulate_workload("efficientnet-b7")
        fast = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        gain = perf_per_tdp(fast, FAST_LARGE, area_power) / perf_per_tdp(tpu, TPU_V3, area_power)
        assert gain > 1.5

    def test_fast_small_also_beats_tpu_on_b7(self, area_power):
        tpu = Simulator(TPU_V3).simulate_workload("efficientnet-b7")
        fast = Simulator(FAST_SMALL).simulate_workload("efficientnet-b7")
        gain = perf_per_tdp(fast, FAST_SMALL, area_power) / perf_per_tdp(tpu, TPU_V3, area_power)
        assert gain > 1.2

    def test_fast_large_meets_latency_budget_fast_small_does_not(self):
        """Table 5: FAST-Large serves B7 within the MLPerf 15 ms-class budget,
        FAST-Small (batch 64) does not."""
        large = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        small = Simulator(FAST_SMALL).simulate_workload("efficientnet-b7")
        assert large.latency_ms < 30
        assert small.latency_ms > 100

    def test_efficientnet_gains_exceed_ocr_gains(self, area_power):
        """Figure 10: workloads already efficient on TPU-v3 benefit least."""
        def gain(workload):
            tpu = Simulator(TPU_V3).simulate_workload(workload)
            fast = Simulator(FAST_LARGE).simulate_workload(workload)
            return perf_per_tdp(fast, FAST_LARGE, area_power) / perf_per_tdp(
                tpu, TPU_V3, area_power
            )

        assert gain("efficientnet-b2") > gain("ocr-rpn")

    def test_tpu_utilization_low_on_efficientnet_high_on_bert128(self):
        """Sections 4.2-4.3: EfficientNet underutilizes TPU-v3, short-sequence BERT does not."""
        b7 = Simulator(TPU_V3).simulate_workload("efficientnet-b7")
        bert = Simulator(TPU_V3).simulate_workload("bert-seq128")
        assert b7.compute_utilization < 0.35
        assert bert.compute_utilization > 0.5

    def test_depthwise_runtime_share_exceeds_flop_share_on_tpu(self):
        """Table 2 shape."""
        result = Simulator(TPU_V3).simulate_workload("efficientnet-b7")
        runtime = result.runtime_fraction_by_op_type()[OpType.DEPTHWISE_CONV2D]
        flops = result.flop_fraction_by_op_type()[OpType.DEPTHWISE_CONV2D]
        assert flops < 0.1
        assert runtime > 0.3

    def test_fusion_is_what_unlocks_the_large_global_memory(self):
        """Figure 15: datapath improvements without fusion hit the bandwidth wall."""
        with_fusion = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        without_fusion = Simulator(
            FAST_LARGE, SimulationOptions(enable_fast_fusion=False)
        ).simulate_workload("efficientnet-b7")
        assert with_fusion.qps > 1.2 * without_fusion.qps

    def test_ablation_shrinking_global_memory_hurts_fast_large(self):
        """Table 6: reverting the 128 MiB Global Memory to 16 MiB costs performance."""
        full = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        small_gm = Simulator(FAST_LARGE.evolve(l3_global_buffer_mib=16)).simulate_workload(
            "efficientnet-b7"
        )
        assert full.qps > small_gm.qps

    def test_ablation_large_systolic_arrays_hurt_fast_large(self, area_power):
        """Table 6: 128x128 arrays (same peak FLOPS) lose Perf/TDP on EfficientNet."""
        reverted = FAST_LARGE.evolve(
            pes_x_dim=2, pes_y_dim=2, systolic_array_x=128, systolic_array_y=128
        )
        full = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        big_arrays = Simulator(reverted).simulate_workload("efficientnet-b7")
        assert perf_per_tdp(full, FAST_LARGE, area_power) > perf_per_tdp(
            big_arrays, reverted, area_power
        )

    def test_bert_long_sequences_less_efficient_than_short(self):
        """Figure 5: longer sequences shift time into softmax/self-attention."""
        short = Simulator(TPU_V3).simulate_workload("bert-seq128")
        long = Simulator(TPU_V3).simulate_workload("bert-seq1024")
        assert long.compute_utilization < short.compute_utilization


class TestSearchIntegration:
    def test_searched_design_beats_tpu_baseline_on_perf_per_tdp(self, area_power):
        """Figure 10: even a short search finds designs with better Perf/TDP than TPU-v3."""
        from repro.core.fast import FASTSearch

        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        result = FASTSearch(problem, optimizer="lcs", seed=0).run(num_trials=40)
        assert result.best_metrics is not None
        tpu = Simulator(TPU_V3).simulate_workload("efficientnet-b0")
        tpu_score = tpu.qps / area_power.tdp_w(TPU_V3)
        assert result.best_metrics.perf_per_tdp("efficientnet-b0") > tpu_score

    def test_multi_workload_objective_balances_workloads(self):
        """Figure 9: the multi-workload design is scored by geometric mean."""
        problem = SearchProblem(
            ["efficientnet-b0", "resnet50"],
            ObjectiveKind.PERF_PER_TDP,
            baseline_qps={"efficientnet-b0": 1000.0, "resnet50": 1000.0},
        )
        evaluator = TrialEvaluator(problem)
        metrics = evaluator.evaluate_config(FAST_SMALL)
        assert metrics.feasible
        expected = (
            (metrics.per_workload_qps["efficientnet-b0"] / 1000.0 / metrics.tdp_w)
            * (metrics.per_workload_qps["resnet50"] / 1000.0 / metrics.tdp_w)
        ) ** 0.5
        assert metrics.aggregate_score == pytest.approx(expected, rel=1e-6)


class TestEconomicsIntegration:
    def test_simulated_speedups_imply_moderate_breakeven_volumes(self, area_power):
        """Tables 4: measured Perf/TDP gains break even at thousands of accelerators."""
        tpu = Simulator(TPU_V3).simulate_workload("efficientnet-b7")
        fast = Simulator(FAST_LARGE).simulate_workload("efficientnet-b7")
        speedup = perf_per_tdp(fast, FAST_LARGE, area_power) / perf_per_tdp(
            tpu, TPU_V3, area_power
        )
        volume = RoiModel().breakeven_volume(speedup)
        assert 1000 < volume < 20000
