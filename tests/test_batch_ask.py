"""Tests for native batch-ask proposals across every optimizer.

The contract (see ``Optimizer.ask_batch``): batch proposals are generated
under *deferred feedback* — no tells happen mid-batch — so for every built-in
optimizer ``ask_batch(n)`` must produce exactly what ``n`` repeated ``ask()``
calls produce from the same state.  The one intentional deviation is the
Bayesian optimizer, whose batch ranks the top-``n`` distinct candidates under
a single posterior instead of returning ``n`` copies of the argmax; that
deviation is pinned down here too.
"""

import numpy as np
import pytest

from repro.hardware.search_space import DatapathSearchSpace
from repro.runtime.batching import BatchedOptimizer, proposal_key
from repro.search import (
    BayesianOptimizer,
    RandomSearchOptimizer,
    TransferWarmStartOptimizer,
    make_optimizer,
)

SPACE = DatapathSearchSpace()

# Optimizers whose batch must equal repeated asks bit-for-bit (deferred tells).
EXACT_OPTIMIZERS = ["random", "lcs", "annealing", "coordinate", "safe:lcs"]
ALL_OPTIMIZERS = EXACT_OPTIMIZERS + ["bayesian"]


def _objective(params) -> float:
    """Deterministic synthetic objective (no simulator needed)."""
    return float(np.sum(SPACE.encode(params)))


def _warmed(name: str, seed: int = 0, num_warm: int = 30):
    """A freshly seeded optimizer with ``num_warm`` self-proposed tells."""
    optimizer = make_optimizer(name, SPACE, seed=seed)
    for _ in range(num_warm):
        params = optimizer.ask()
        optimizer.tell(params, _objective(params), feasible=True)
    return optimizer


def _in_space(params) -> bool:
    return all(params[spec.name] in spec.choices for spec in SPACE.specs)


# ---------------------------------------------------------------------------
class TestBatchProposalsInSpace:
    @pytest.mark.parametrize("name", ALL_OPTIMIZERS)
    def test_cold_batch_in_space(self, name):
        proposals = make_optimizer(name, SPACE, seed=1).ask_batch(6)
        assert len(proposals) == 6
        assert all(_in_space(p) for p in proposals)

    @pytest.mark.parametrize("name", ALL_OPTIMIZERS)
    def test_warm_batch_in_space(self, name):
        proposals = _warmed(name).ask_batch(6)
        assert len(proposals) == 6
        assert all(_in_space(p) for p in proposals)

    @pytest.mark.parametrize("name", ALL_OPTIMIZERS)
    def test_empty_and_negative_batches(self, name):
        optimizer = make_optimizer(name, SPACE, seed=1)
        assert optimizer.ask_batch(0) == []
        assert optimizer.ask_batch(-3) == []


# ---------------------------------------------------------------------------
class TestDeferredEquivalence:
    @pytest.mark.parametrize("name", EXACT_OPTIMIZERS)
    def test_batch_equals_repeated_asks(self, name):
        """Twin optimizers (same seed, same tells): one batch-asks, the other
        repeat-asks; the proposal sequences must be identical."""
        repeat = _warmed(name)
        batch = _warmed(name)
        expected = [repeat.ask() for _ in range(8)]
        assert [proposal_key(p) for p in batch.ask_batch(8)] == [
            proposal_key(p) for p in expected
        ]

    @pytest.mark.parametrize("name", EXACT_OPTIMIZERS)
    def test_batch_tell_trajectory_matches_repeated(self, name):
        """ask_batch + tells reproduces the best-objective trajectory of
        repeated ask + deferred tells for the same total budget."""
        repeat = _warmed(name)
        batch = _warmed(name)
        repeat_proposals = [repeat.ask() for _ in range(8)]
        batch_proposals = batch.ask_batch(8)
        for optimizer, proposals in ((repeat, repeat_proposals), (batch, batch_proposals)):
            for params in proposals:
                optimizer.tell(params, _objective(params), feasible=True)
        assert repeat.best_objective_curve() == batch.best_objective_curve()

    def test_random_matches_even_interleaved_tells(self):
        """Random search ignores feedback entirely, so its batch equals n
        interleaved ask/tell rounds, not just deferred asks."""
        interleaved = RandomSearchOptimizer(SPACE, seed=9)
        batched = RandomSearchOptimizer(SPACE, seed=9)
        expected = []
        for _ in range(10):
            params = interleaved.ask()
            interleaved.tell(params, _objective(params), feasible=True)
            expected.append(proposal_key(params))
        assert [proposal_key(p) for p in batched.ask_batch(10)] == expected

    def test_transfer_drains_warm_starts_first(self):
        rng = np.random.default_rng(123)
        priors = [SPACE.sample(rng) for _ in range(3)]
        optimizer = TransferWarmStartOptimizer(SPACE, seed=0, prior_params=priors)
        twin = TransferWarmStartOptimizer(SPACE, seed=0, prior_params=priors)
        batch = optimizer.ask_batch(5)
        assert [proposal_key(p) for p in batch[:3]] == [proposal_key(p) for p in priors]
        assert [proposal_key(p) for p in batch] == [
            proposal_key(twin.ask()) for _ in range(5)
        ]


# ---------------------------------------------------------------------------
class TestBayesianBatchDeviation:
    """The documented deviation: one posterior, top-n distinct EI candidates."""

    def test_warmup_phase_equals_repeated_asks(self):
        repeat = BayesianOptimizer(SPACE, seed=3)
        batch = BayesianOptimizer(SPACE, seed=3)
        expected = [repeat.ask() for _ in range(6)]  # still space-filling
        assert [proposal_key(p) for p in batch.ask_batch(6)] == [
            proposal_key(p) for p in expected
        ]

    def test_first_batch_proposal_is_the_single_ask(self):
        repeat = _warmed("bayesian")
        batch = _warmed("bayesian")
        assert proposal_key(batch.ask_batch(4)[0]) == proposal_key(repeat.ask())

    def test_batch_proposals_are_distinct(self):
        proposals = _warmed("bayesian").ask_batch(8)
        keys = [proposal_key(p) for p in proposals]
        assert len(set(keys)) == len(keys)

    def test_deviates_from_repeated_asks_after_warmup(self):
        """Repeated asks under deferred feedback return near-identical argmax
        points; the batch intentionally spreads over the EI ranking instead."""
        repeat = _warmed("bayesian")
        batch = _warmed("bayesian")
        repeated = [proposal_key(repeat.ask()) for _ in range(4)]
        batched = [proposal_key(p) for p in batch.ask_batch(4)]
        assert len(set(batched)) == 4
        assert len(set(repeated)) < 4 or repeated != batched


# ---------------------------------------------------------------------------
class TestBatchedOptimizerIntegration:
    def test_wrapper_prefers_native_batch(self):
        calls = []

        class Recording(RandomSearchOptimizer):
            def ask_batch(self, n):
                calls.append(n)
                return super().ask_batch(n)

        batched = BatchedOptimizer(Recording(SPACE, seed=0), SPACE)
        batched.ask_batch(5)
        assert calls == [5]

    def test_wrapper_deduplicates_native_batches(self):
        class StuckBatch(RandomSearchOptimizer):
            """Native batch proposing the same configuration n times."""

            def ask_batch(self, n):
                fixed = SPACE.sample(np.random.default_rng(7))
                return [dict(fixed) for _ in range(n)]

        batched = BatchedOptimizer(StuckBatch(SPACE, seed=0), SPACE)
        proposals = batched.ask_batch(5)
        keys = {proposal_key(p) for p in proposals}
        assert len(keys) == 5
        assert batched.num_duplicates_avoided > 0

    def test_wrapper_falls_back_for_duck_typed_optimizers(self):
        class AskOnly:
            """Duck-typed optimizer with no ask_batch at all."""

            def __init__(self):
                self.space = SPACE
                self.rng = np.random.default_rng(0)

            def ask(self):
                return self.space.sample(self.rng)

        batched = BatchedOptimizer(AskOnly(), SPACE)
        proposals = batched.ask_batch(4)
        assert len(proposals) == 4
        assert all(_in_space(p) for p in proposals)
