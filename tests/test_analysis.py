"""Tests for the analysis package (footprints, operational intensity, bottlenecks)."""

import pytest

from repro.analysis.bottleneck import (
    bert_component_breakdown,
    characterize_op_types,
    per_layer_utilization,
)
from repro.analysis.footprint import storage_requirements, storage_requirements_table
from repro.analysis.intensity import intensity_report, operational_intensity
from repro.core.designs import FAST_SMALL, TPU_V3
from repro.workloads.ops import OpType
from repro.workloads.registry import build_workload


class TestFootprint:
    def test_requirements_match_graph_accounting(self, efficientnet_b0):
        req = storage_requirements(efficientnet_b0)
        assert req.max_working_set_bytes == efficientnet_b0.max_working_set_bytes()
        assert req.weight_bytes == efficientnet_b0.weight_bytes()
        assert req.max_working_set_mib > 0
        assert req.weight_mib > 0

    def test_table1_ordering(self):
        """Table 1: working sets and weights grow monotonically from B0 to B3."""
        table = storage_requirements_table(
            ["efficientnet-b0", "efficientnet-b1", "efficientnet-b2", "efficientnet-b3"]
        )
        weights = [table[f"efficientnet-b{i}"].weight_bytes for i in range(4)]
        assert weights == sorted(weights)

    def test_b0_magnitudes_match_table1(self):
        """Table 1: B0 weights ~12.7 MiB, working set a few MiB (bfloat16)."""
        req = storage_requirements(build_workload("efficientnet-b0", batch_size=1))
        assert 7 < req.weight_mib < 20
        assert 1 < req.max_working_set_mib < 12

    def test_working_set_scales_with_batch(self):
        b1 = storage_requirements(build_workload("efficientnet-b0", batch_size=1))
        b8 = storage_requirements(build_workload("efficientnet-b0", batch_size=8))
        assert b8.max_working_set_bytes == pytest.approx(8 * b1.max_working_set_bytes, rel=0.05)
        assert b8.weight_bytes == b1.weight_bytes


class TestIntensity:
    def test_strategies_ordered(self, efficientnet_b0):
        """Figure 3: none < xla < block < ideal."""
        report = intensity_report(efficientnet_b0)
        assert (
            report["none"] < report["xla"] <= report["block"] < report["ideal"]
        )

    def test_unknown_strategy_rejected(self, efficientnet_b0):
        with pytest.raises(ValueError):
            operational_intensity(efficientnet_b0, "fancy")

    def test_efficientnet_unfused_is_memory_bound_on_tpu(self, efficientnet_b0):
        """Section 4.1: unfused EfficientNet sits far below the TPU-v3 ridgepoint."""
        assert operational_intensity(efficientnet_b0, "none") < 40
        assert operational_intensity(efficientnet_b0, "none") < TPU_V3.operational_intensity_ridgepoint

    def test_resnet_has_higher_intensity_than_efficientnet(self, efficientnet_b0, resnet50):
        assert operational_intensity(resnet50, "xla") > operational_intensity(
            efficientnet_b0, "xla"
        )

    def test_batching_helps_resnet_more_than_efficientnet(self):
        """Figure 3: batching amortizes ResNet weights but not EfficientNet's."""
        def gain(name):
            b1 = operational_intensity(build_workload(name, batch_size=1), "xla")
            b8 = operational_intensity(build_workload(name, batch_size=8), "xla")
            return b8 / b1

        assert gain("resnet50") > gain("efficientnet-b0")

    def test_ideal_intensity_uses_only_model_io(self, bert_seq128):
        report = intensity_report(bert_seq128)
        io_bytes = sum(
            bert_seq128.tensor(t).size_bytes
            for t in bert_seq128.input_names + bert_seq128.output_names
        )
        assert report["ideal"] == pytest.approx(bert_seq128.total_flops() / io_bytes)


class TestBottleneck:
    def test_table2_depthwise_dominates_runtime_on_tpu(self):
        """Table 2: depthwise convs take far more runtime than their FLOP share."""
        rows = characterize_op_types("efficientnet-b4", TPU_V3)
        by_type = {row.op_type: row for row in rows}
        dw = by_type[OpType.DEPTHWISE_CONV2D]
        conv = by_type[OpType.CONV2D]
        assert dw.flop_fraction < 0.2
        assert dw.runtime_fraction > dw.flop_fraction * 3
        assert conv.flop_fraction > 0.7

    def test_per_layer_utilization_shape(self):
        values = per_layer_utilization("efficientnet-b0", TPU_V3)
        assert len(values) > 10
        assert all(0 <= v <= 1 for v in values)

    def test_figure4_early_layers_worse_than_late_layers(self):
        """Figure 4: early layers (few channels) run at lower utilization."""
        values = per_layer_utilization("efficientnet-b4", TPU_V3)
        early = sum(values[:10]) / 10
        late = sum(values[-10:]) / 10
        assert late > early

    def test_figure5_attention_share_grows_with_sequence_length(self):
        """Figure 5: softmax + self-attention dominate at long sequence lengths."""
        breakdown = bert_component_breakdown(FAST_SMALL, [128, 512], batch_size=4)
        short = breakdown[128]
        long = breakdown[512]
        attention_short = short.get("self_attention", 0) + short.get("softmax", 0)
        attention_long = long.get("self_attention", 0) + long.get("softmax", 0)
        assert attention_long > attention_short
        assert long.get("feed_forward", 0) < short.get("feed_forward", 0)
