"""Tests for the shared cost-cache tier.

Covers the three tiers added on top of the private in-memory caches: the
persistent region store (JSONL, digest-keyed, duplicate-tolerant under
concurrent writers), the zero-copy shared-memory segment pool workers
attach, and the cluster cache service (``/cache/region`` on ``repro
serve`` plus the batched :class:`RemoteCostCache` client).  The invariant
under test everywhere: every tier serves bit-identical entries, so search
histories never depend on which tier answered.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.fusion.fast_fusion import FusionDecision, RegionStats
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime.executor import ParallelExecutor
from repro.runtime.opcache import (
    OpCostCache,
    RegionCostCache,
    get_region_cache,
    region_entry_from_dict,
    region_entry_to_dict,
    reset_op_caches,
)
from repro.runtime.remote import RemoteCostCache, RemoteExecutionError
from repro.runtime.service import serve
from repro.runtime.shmcache import attach_shared_cache, publish_shared_cache
from repro.simulator.engine import SimulationOptions
from repro.simulator.enginespec import EngineSpec
from repro.simulator.result import RegionPerformance
from repro.workloads.ops import OpType


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_op_caches()
    yield
    reset_op_caches()


def _region_entry(index: int = 0, scale: float = 1.0) -> tuple:
    """A realistic (RegionPerformance, RegionStats) pair with awkward floats."""
    record = RegionPerformance(
        index=index,
        name=f"region_{index}",
        op_names=[f"conv_{index}", f"relu_{index}"],
        primary_op_type=OpType.CONV2D,
        flops=123456789,
        compute_cycles=0.1 + 0.2,  # 0.30000000000000004: exact round-trip test
        vector_cycles=scale * 7.25,
        dram_input_bytes=scale * 1e6 / 3.0,
        dram_weight_bytes=1.0 + 1e-16,
        dram_output_bytes=98304.0,
        pre_fusion_cycles=scale * 1234.5678901234567,
        post_fusion_cycles=scale * 1234.5678901234567,
        matrix_utilization=2.0 / 3.0,
        fusion=FusionDecision(),
        op_busy_cycles={f"conv_{index}": scale * 999.125},
    )
    stats = RegionStats(
        index=index,
        name=f"region_{index}",
        busy_cycles=scale * 1234.5678901234567,
        t_max_cycles=scale * 2000.0,
        input_dram_cycles=scale * 10.0 / 7.0,
        weight_dram_cycles=0.0,
        output_dram_cycles=scale * 3.3333333333333335,
        input_bytes=4096,
        weight_bytes=2048,
        output_bytes=8192,
        blocking_gm_bytes=0,
        predecessor=None if index == 0 else index - 1,
        is_graph_output=index == 0,
    )
    return (record, stats)


# ---------------------------------------------------------------------------
class TestRegionEntryCodec:
    def test_roundtrip_is_exact(self):
        entry = _region_entry(index=3, scale=1.7)
        decoded = region_entry_to_dict(entry)
        # The wire form must survive actual JSON serialization.
        wire = json.loads(json.dumps(decoded))
        record, stats = region_entry_from_dict(wire)
        assert record == entry[0]
        assert stats == entry[1]

    def test_failure_sentinel(self):
        wire = json.loads(json.dumps(region_entry_to_dict((None,))))
        assert wire == {"failed": True}
        assert region_entry_from_dict(wire) == (None,)


# ---------------------------------------------------------------------------
class TestRegionStore:
    def test_store_roundtrip_and_disk_hits(self, tmp_path):
        store = tmp_path / "regions.jsonl"
        writer = RegionCostCache(path=store)
        entries = {(i, "key"): _region_entry(i) for i in range(4)}
        entries[(9, "fail")] = (None,)
        for key, entry in entries.items():
            writer.put(key, entry)
        assert store.exists()

        reader = RegionCostCache(path=store)
        assert reader.stats.disk_entries_loaded == len(entries)
        for key, entry in entries.items():
            assert reader.get(key) == entry
        assert reader.stats.disk_hits == len(entries)
        assert reader.stats.hits == len(entries)
        # A second read of the same key is a memory hit, not a disk hit.
        assert reader.get((0, "key")) == entries[(0, "key")]
        assert reader.stats.disk_hits == len(entries)

    def test_single_writer_never_duplicates(self, tmp_path):
        store = tmp_path / "regions.jsonl"
        cache = RegionCostCache(path=store)
        entry = _region_entry()
        for _ in range(5):
            cache.put(("same", "key"), entry)
        assert len(store.read_text().splitlines()) == 1

    def test_preload_false_skips_load_but_appends(self, tmp_path):
        store = tmp_path / "regions.jsonl"
        RegionCostCache(path=store).put(("old",), _region_entry(0))
        lazy = RegionCostCache(path=store, preload=False)
        assert lazy.stats.disk_entries_loaded == 0
        assert lazy.get(("old",)) is None  # not loaded, by design
        lazy.put(("new",), _region_entry(1))
        assert len(store.read_text().splitlines()) == 2
        assert RegionCostCache(path=store).get(("old",)) is not None


def _append_worker(store_path: str, writer_id: int) -> None:
    """One writer process: race the shared key, then add a private one."""
    cache = RegionCostCache(path=store_path, preload=False)
    cache.put(("contested", "key"), _region_entry(index=7, scale=2.5))
    cache.put(("private", writer_id), _region_entry(index=writer_id))


class TestConcurrentAppends:
    def test_multiprocess_append_race_same_key(self, tmp_path):
        store = tmp_path / "regions.jsonl"
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(target=_append_worker, args=(str(store), i))
            for i in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0

        # Every line is intact JSON (single-write appends never interleave).
        lines = store.read_text().splitlines()
        assert len(lines) == 8  # 4 x contested + 4 x private
        records = [json.loads(line) for line in lines]
        contested_digest = RegionCostCache.digest(("contested", "key"))
        contested = [r for r in records if r["key"] == contested_digest]
        assert len(contested) == 4
        # Duplicate records are bitwise-identical: loading serves the entry
        # regardless of which writer's record wins.
        assert all(r == contested[0] for r in contested)

        loaded = RegionCostCache(path=store)
        assert loaded.stats.corrupt_records == 0
        assert loaded.get(("contested", "key")) == _region_entry(index=7, scale=2.5)
        for i in range(4):
            assert loaded.get(("private", i)) == _region_entry(index=i)

        # Compaction folds the duplicates down to one record per key.
        kept = loaded.compact()
        assert kept == 5
        assert len(store.read_text().splitlines()) == 5
        recompacted = RegionCostCache(path=store)
        assert recompacted.get(("contested", "key")) == _region_entry(
            index=7, scale=2.5
        )


# ---------------------------------------------------------------------------
class TestSharedMemoryTier:
    def test_publish_attach_bit_equal(self):
        op_cache = OpCostCache()
        region_cache = RegionCostCache()
        region_cache.publish_raw = True
        entries = {("r", i): _region_entry(i) for i in range(3)}
        for key, entry in entries.items():
            region_cache.put(key, entry)

        publisher = publish_shared_cache(op_cache, region_cache)
        assert publisher is not None
        try:
            view = attach_shared_cache(publisher.index)
            assert view is not None
            # A completely cold cache served purely by the shared segment.
            cold = RegionCostCache()
            cold.attach_shared(view.region_lookup)
            for key, entry in entries.items():
                assert cold.get(key) == entry
            assert cold.stats.shared_hits == len(entries)
            assert cold.stats.hits == len(entries)
            assert cold.get(("missing",)) is None
            assert cold.stats.misses == 1
        finally:
            publisher.close()

    def test_empty_caches_publish_nothing(self):
        assert publish_shared_cache(OpCostCache(), RegionCostCache()) is None

    def test_parallel_shared_cache_history_matches_serial(self, tmp_path):
        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)

        def run(executor=None, store=None):
            reset_op_caches()
            options = SimulationOptions(
                fusion_solver="greedy", region_store_path=store
            )
            search = FASTSearch(
                problem,
                optimizer="random",
                seed=17,
                evaluator=TrialEvaluator(problem, simulation_options=options),
                executor=executor,
            )
            result = search.run(num_trials=6, batch_size=3)
            return [trial_metrics_to_dict(m) for m in result.history], result

        store = str(tmp_path / "regions.jsonl")
        serial_history, _ = run()
        _, _ = run(store=store)  # write the store serially

        executor = ParallelExecutor(num_workers=2, shared_cache=True)
        try:
            parallel_history, result = run(executor=executor, store=store)
        finally:
            executor.close()
        assert parallel_history == serial_history
        stats = result.runtime
        # Workers attached the parent-published segment and served the whole
        # first batch from cache: no region was recomputed.
        assert stats.shared_cache_attached >= 1
        assert stats.shared_cache_entries > 0
        assert stats.region_cache_hits > 0
        assert stats.region_cache_misses == 0


# ---------------------------------------------------------------------------
class TestClusterTier:
    def test_service_roundtrip_and_fingerprint_check(self, tmp_path):
        store = tmp_path / "svc.jsonl"
        engine = EngineSpec.parse(f"graph-batched:region_store={store}")
        with serve(port=0, engine=engine) as svc:
            client = RemoteCostCache(svc.url, fingerprint="0123456789abcdef")
            raw = region_entry_to_dict(_region_entry(2))
            assert client.put_many({"d-1": raw, "d-2": {"failed": True}}) == 2
            assert client.put_many({"d-1": raw}) == 0  # dedup
            got = client.get_many(["d-1", "d-2", "d-3"])
            assert got == {"d-1": raw, "d-2": {"failed": True}}
            assert region_entry_from_dict(got["d-1"]) == _region_entry(2)

            bad = RemoteCostCache(svc.url, fingerprint="NOT-HEX", max_retries=0)
            with pytest.raises(RemoteExecutionError, match="400"):
                bad.get_many(["d-1"])
        # PUTs were persisted to the service's region store.
        assert len(store.read_text().splitlines()) == 2

    def test_prefetch_promotes_and_counts(self):
        with serve(port=0) as svc:
            client = RemoteCostCache(svc.url, fingerprint="0123456789abcdef")
            keys = [("k", i) for i in range(3)]
            entries = {key: _region_entry(i) for i, key in enumerate(keys)}
            client.put_many(
                {
                    RegionCostCache.digest(key): region_entry_to_dict(entry)
                    for key, entry in entries.items()
                }
            )
            cache = RegionCostCache()
            cache.attach_remote(client)
            fetched = cache.prefetch(keys + [("unknown",)])
            assert fetched == 3
            assert cache.stats.remote_hits == 3
            assert cache.stats.remote_misses == 1
            for key, entry in entries.items():
                assert cache.get(key) == entry
            # Prefetched entries surface as ordinary hits afterwards.
            assert cache.stats.hits == 3

    def test_search_against_cache_service(self, tmp_path):
        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)

        def run(url=None):
            reset_op_caches()
            options = SimulationOptions(
                fusion_solver="greedy", region_cache_service=url
            )
            search = FASTSearch(
                problem,
                optimizer="random",
                seed=23,
                evaluator=TrialEvaluator(problem, simulation_options=options),
            )
            result = search.run(num_trials=5, batch_size=5)
            return [trial_metrics_to_dict(m) for m in result.history], result

        baseline, _ = run()
        # The serve gets its own region store so its cache survives the
        # reset_op_caches() that makes each client run cold (in-process the
        # service and the clients share the per-path cache registry).
        engine = EngineSpec.parse(
            f"graph-batched:region_store={tmp_path / 'svc.jsonl'}"
        )
        with serve(port=0, engine=engine) as svc:
            _, first = run(svc.url)
            _, second = run(svc.url)  # cold client, warm service
        assert first.runtime.remote_cache_puts > 0
        assert first.runtime.remote_cache_hits == 0
        total = (
            second.runtime.remote_cache_hits + second.runtime.remote_cache_misses
        )
        assert total > 0
        # Acceptance: a repeat sweep against a warmed cache service resolves
        # at least half its region lookups remotely (here: all of them).
        assert second.runtime.remote_cache_hits / total >= 0.5
        assert second.runtime.region_cache_misses == 0
        # The tier is invisible in the histories.
        for history in (run(None)[0],):
            assert history == baseline

    def test_service_down_is_nonfatal(self):
        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)
        reset_op_caches()
        options = SimulationOptions(
            fusion_solver="greedy",
            region_cache_service="http://127.0.0.1:9",  # nothing listens here
        )
        search = FASTSearch(
            problem,
            optimizer="random",
            seed=23,
            evaluator=TrialEvaluator(problem, simulation_options=options),
        )
        result = search.run(num_trials=3, batch_size=3)
        assert result.num_trials == 3
        assert result.runtime.remote_cache_failures > 0


# ---------------------------------------------------------------------------
class TestEngineSpecCacheKeys:
    def test_parse_str_roundtrip(self):
        text = "graph-batched:region_store=runs/r.jsonl,cache_service=http://h:8642"
        spec = EngineSpec.parse(text)
        assert spec.region_store == "runs/r.jsonl"
        assert spec.cache_service == "http://h:8642"
        assert EngineSpec.parse(str(spec)) == spec

    def test_options_roundtrip(self):
        spec = EngineSpec.parse(
            "graph-batched:region_store=r.jsonl,cache_service=http://h:1"
        )
        options = spec.to_simulation_options(fusion_solver="greedy")
        assert options.region_store_path == "r.jsonl"
        assert options.region_cache_service == "http://h:1"
        assert EngineSpec.from_simulation_options(options) == spec

    def test_cache_keys_are_perf_only(self):
        """Region store / cache service must not change the problem fingerprint."""
        from repro.runtime.cache import problem_fingerprint

        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)
        plain = TrialEvaluator(
            problem,
            simulation_options=SimulationOptions(fusion_solver="greedy"),
        )
        tiered = TrialEvaluator(
            problem,
            simulation_options=SimulationOptions(
                fusion_solver="greedy",
                region_store_path="x.jsonl",
                region_cache_service="http://h:8642",
            ),
        )
        assert problem_fingerprint(problem, plain) == problem_fingerprint(
            problem, tiered
        )
