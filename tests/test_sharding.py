"""Tests for the sharded sweep orchestrator (repro.runtime.sharding)."""

import math

import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.serialization import params_to_jsonable, trial_metrics_to_dict
from repro.runtime import ParallelExecutor
from repro.runtime.sharding import (
    ShardResult,
    ShardSpec,
    load_shard_result,
    merge_shard_results,
    plan_shards,
    run_shard,
    run_sharded_sweep,
    save_shard_result,
    shard_seed,
    shard_space,
    sweep_result_to_dict,
)
from repro.search.pareto import ParetoFront


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _front_objectives(front: ParetoFront):
    return sorted(point.objectives for point in front.points)


# ---------------------------------------------------------------------------
class TestPlanning:
    def test_budget_splits_exactly(self):
        specs = plan_shards(total_trials=22, num_shards=4, seed=3)
        assert sum(spec.num_trials for spec in specs) == 22
        assert [spec.num_trials for spec in specs] == [6, 6, 5, 5]
        assert [spec.shard_id for spec in specs] == [0, 1, 2, 3]

    def test_single_shard_keeps_base_seed(self):
        assert shard_seed(17, 0, 1) == 17
        (spec,) = plan_shards(10, 1, seed=17)
        assert spec.seed == 17

    def test_multi_shard_seeds_are_distinct_and_deterministic(self):
        seeds = [shard_seed(0, k, 8) for k in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [shard_seed(0, k, 8) for k in range(8)]

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(10, 2, mode="space")  # missing partition_axis
        with pytest.raises(ValueError):
            plan_shards(10, 2, mode="bogus")

    def test_space_partition_is_disjoint_and_covering(self):
        space = DatapathSearchSpace()
        axis = "l3_global_buffer_mib"
        specs = plan_shards(12, 3, mode="space", partition_axis=axis)
        slices = [shard_space(space, spec).spec(axis).choices for spec in specs]
        merged = sorted(choice for piece in slices for choice in piece)
        assert merged == sorted(space.spec(axis).choices)
        flat = [choice for piece in slices for choice in piece]
        assert len(flat) == len(set(flat))  # disjoint
        # other axes are untouched
        restricted = shard_space(space, specs[0])
        assert restricted.spec("pes_x_dim").choices == space.spec("pes_x_dim").choices

    def test_space_partition_rejects_too_many_shards(self):
        space = DatapathSearchSpace()
        spec = ShardSpec(0, 99, seed=0, num_trials=1, mode="space",
                         partition_axis="l1_buffer_config")
        with pytest.raises(ValueError):
            shard_space(space, spec)


# ---------------------------------------------------------------------------
class TestSweep:
    def test_single_shard_reproduces_plain_search_bitwise(self):
        plain = FASTSearch(_problem(), optimizer="lcs", seed=5).run(12, batch_size=4)
        sweep = run_sharded_sweep(
            _problem(), total_trials=12, num_shards=1, optimizer="lcs", seed=5,
            batch_size=4,
        )
        assert [trial_metrics_to_dict(t.metrics) for t in sweep.trials] == [
            trial_metrics_to_dict(m) for m in plain.history
        ]
        assert [params_to_jsonable(t.params) for t in sweep.trials] == [
            params_to_jsonable(p) for p in plain.proposals
        ]
        assert _front_objectives(sweep.pareto_front) == _front_objectives(plain.pareto_front)

    def test_merged_front_equals_single_process_union(self):
        """The acceptance criterion: a 4-shard sweep's merged Pareto front is
        identical to the union of the equivalent per-shard searches run
        back-to-back in one process, for the same total budget and seeds."""
        sweep = run_sharded_sweep(
            _problem(), total_trials=16, num_shards=4, optimizer="random", seed=0,
            batch_size=4,
        )
        union = ParetoFront()
        for spec in plan_shards(16, 4, seed=0):
            result = FASTSearch(_problem(), optimizer="random", seed=spec.seed).run(
                spec.num_trials, batch_size=4
            )
            union.merge(result.pareto_front)
        assert _front_objectives(sweep.pareto_front) == _front_objectives(union)
        assert sum(s.num_trials for s in sweep.shards) == 16

    def test_sweep_is_executor_independent(self):
        serial = run_sharded_sweep(
            _problem(), total_trials=8, num_shards=2, optimizer="lcs", seed=1,
            batch_size=4,
        )
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_sharded_sweep(
                _problem(), total_trials=8, num_shards=2, optimizer="lcs", seed=1,
                batch_size=4, executor=executor,
            )
        assert [trial_metrics_to_dict(t.metrics) for t in serial.trials] == [
            trial_metrics_to_dict(t.metrics) for t in parallel.trials
        ]
        assert _front_objectives(serial.pareto_front) == _front_objectives(
            parallel.pareto_front
        )

    def test_best_trial_is_best_across_shards(self):
        sweep = run_sharded_sweep(
            _problem(), total_trials=12, num_shards=3, optimizer="random", seed=0,
            batch_size=4,
        )
        feasible = [
            t for t in sweep.trials
            if t.metrics.feasible and math.isfinite(t.metrics.objective_value)
        ]
        if not feasible:
            assert sweep.best_trial is None
            assert math.isnan(sweep.best_score)
        else:
            assert sweep.best_score == max(t.metrics.aggregate_score for t in feasible)


# ---------------------------------------------------------------------------
class TestMerge:
    def _two_shards(self):
        specs = plan_shards(8, 2, seed=0)
        return [run_shard(_problem(), spec, optimizer="random", batch_size=4)
                for spec in specs]

    def test_merge_is_order_independent(self):
        shards = self._two_shards()
        forward = merge_shard_results(shards)
        backward = merge_shard_results(list(reversed(shards)))
        assert [trial_metrics_to_dict(t.metrics) for t in forward.trials] == [
            trial_metrics_to_dict(t.metrics) for t in backward.trials
        ]
        assert [(t.shard_id, t.trial_index) for t in forward.trials] == [
            (t.shard_id, t.trial_index) for t in backward.trials
        ]
        assert _front_objectives(forward.pareto_front) == _front_objectives(
            backward.pareto_front
        )
        assert forward.best_params == backward.best_params

    def test_merge_deduplicates_identical_trials(self):
        spec = plan_shards(6, 1, seed=2)[0]
        shard = run_shard(_problem(), spec, optimizer="random", batch_size=3)
        twin = ShardResult(
            spec=ShardSpec(1, 2, seed=spec.seed, num_trials=spec.num_trials),
            proposals=[dict(p) for p in shard.proposals],
            history=list(shard.history),
            runtime=shard.runtime,
        )
        merged = merge_shard_results([shard, twin])
        assert merged.num_trials == shard.num_trials  # twin fully collapsed
        assert merged.duplicates_removed == twin.num_trials
        assert all(t.shard_id == spec.shard_id for t in merged.trials)

    def test_merge_aggregates_runtime_stats(self):
        shards = self._two_shards()
        merged = merge_shard_results(shards)
        assert merged.runtime.trials_evaluated == sum(
            s.runtime.trials_evaluated for s in shards
        )
        assert merged.runtime.batches == sum(s.runtime.batches for s in shards)

    def test_pareto_payload_carries_provenance(self):
        merged = merge_shard_results(self._two_shards())
        for point in merged.pareto_front.points:
            assert "shard" in point.payload and "trial" in point.payload
            assert "params" in point.payload and "score" in point.payload


# ---------------------------------------------------------------------------
class TestShardSerialization:
    def test_shard_round_trip(self, tmp_path):
        spec = plan_shards(6, 2, seed=4)[0]
        shard = run_shard(_problem(), spec, optimizer="random", batch_size=3)
        path = save_shard_result(shard, tmp_path / "shard-0.json")
        loaded = load_shard_result(path)
        assert loaded.spec == shard.spec
        assert [params_to_jsonable(p) for p in loaded.proposals] == [
            params_to_jsonable(p) for p in shard.proposals
        ]
        assert [trial_metrics_to_dict(m) for m in loaded.history] == [
            trial_metrics_to_dict(m) for m in shard.history
        ]
        assert loaded.runtime.trials_evaluated == shard.runtime.trials_evaluated

    def test_merge_from_files_matches_in_process_merge(self, tmp_path):
        specs = plan_shards(8, 2, seed=0)
        shards = [run_shard(_problem(), spec, optimizer="random", batch_size=4)
                  for spec in specs]
        loaded = [
            load_shard_result(save_shard_result(s, tmp_path / f"s{s.spec.shard_id}.json"))
            for s in shards
        ]
        direct = merge_shard_results(shards)
        via_files = merge_shard_results(loaded)
        assert _front_objectives(direct.pareto_front) == _front_objectives(
            via_files.pareto_front
        )
        assert sweep_result_to_dict(direct) == sweep_result_to_dict(via_files)

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            load_shard_result(path)


# ---------------------------------------------------------------------------
class TestSweepWithCache:
    def test_shards_share_one_logical_cache(self, tmp_path):
        cache_path = tmp_path / "cache.jsonl"
        first = run_sharded_sweep(
            _problem(), total_trials=8, num_shards=2, optimizer="random", seed=0,
            batch_size=4, cache_path=cache_path,
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "cache.jsonl.shard-0", "cache.jsonl.shard-1",
        ]
        # A re-run is served entirely from the sidecar files.
        again = run_sharded_sweep(
            _problem(), total_trials=8, num_shards=2, optimizer="random", seed=0,
            batch_size=4, cache_path=cache_path,
        )
        assert again.runtime.trials_evaluated == 0
        assert again.runtime.cache_hits == 8
        assert [trial_metrics_to_dict(t.metrics) for t in again.trials] == [
            trial_metrics_to_dict(t.metrics) for t in first.trials
        ]
