"""Tests for FAST fusion (the Figure 8 ILP and the greedy heuristic)."""

import pytest

from repro.fusion.fast_fusion import FastFusionOptimizer, FusionDecision, RegionStats


def make_chain(num_regions, weight_bytes=0, act_bytes=100, dram_cycles=10.0, busy=5.0):
    """A linear chain of memory-bound regions where adjacent pinning helps."""
    regions = []
    for i in range(num_regions):
        regions.append(
            RegionStats(
                index=i,
                name=f"r{i}",
                busy_cycles=busy,
                t_max_cycles=busy + 3 * dram_cycles,
                input_dram_cycles=dram_cycles,
                weight_dram_cycles=dram_cycles if weight_bytes else 0.0,
                output_dram_cycles=dram_cycles,
                input_bytes=act_bytes,
                weight_bytes=weight_bytes,
                output_bytes=act_bytes,
                blocking_gm_bytes=0,
                predecessor=i - 1 if i > 0 else None,
                is_graph_output=(i == num_regions - 1),
            )
        )
    return regions


class TestDisabledAndTrivialCases:
    def test_zero_capacity_pins_nothing(self):
        optimizer = FastFusionOptimizer(gm_capacity_bytes=0)
        result = optimizer.optimize(make_chain(4))
        assert all(not d.any for d in result.decisions)
        assert result.total_cycles_post == pytest.approx(result.total_cycles_pre)
        assert result.speedup == pytest.approx(1.0)

    def test_empty_region_list(self):
        result = FastFusionOptimizer(gm_capacity_bytes=1000).optimize([])
        assert result.decisions == []
        assert result.total_cycles_post == 0

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            FastFusionOptimizer(gm_capacity_bytes=10, solver="magic")


@pytest.mark.parametrize("solver", ["greedy", "ilp"])
class TestBothBackends:
    def test_ample_capacity_pins_whole_chain(self, solver):
        regions = make_chain(5)
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver=solver).optimize(regions)
        # Every adjacent producer/consumer pair should be pinned.
        for i in range(len(regions) - 1):
            assert result.decisions[i].pin_output
            assert result.decisions[i + 1].pin_input
        assert result.total_cycles_post < result.total_cycles_pre
        assert result.speedup > 1.5

    def test_capacity_constraint_respected(self, solver):
        regions = make_chain(6, act_bytes=100)
        capacity = 150  # only one activation (100 B) fits alongside another
        result = FastFusionOptimizer(gm_capacity_bytes=capacity, solver=solver).optimize(regions)
        for i, (region, decision) in enumerate(zip(regions, result.decisions)):
            usage = region.blocking_gm_bytes
            if decision.pin_input:
                usage += region.input_bytes
            if decision.pin_output:
                usage += region.output_bytes
            usage += sum(
                r.weight_bytes for r, d in zip(regions, result.decisions) if d.pin_weights
            )
            assert usage <= capacity

    def test_producer_consumer_consistency(self, solver):
        regions = make_chain(5)
        result = FastFusionOptimizer(gm_capacity_bytes=250, solver=solver).optimize(regions)
        for i in range(len(regions) - 1):
            if result.decisions[i + 1].pin_input:
                assert result.decisions[i].pin_output
            if result.decisions[i].pin_output:
                assert result.decisions[i + 1].pin_input

    def test_non_adjacent_inputs_never_pinned(self, solver):
        regions = make_chain(4)
        # Region 2's input is produced by region 0 (skip connection).
        regions[2] = RegionStats(**{**regions[2].__dict__, "predecessor": 0})
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver=solver).optimize(regions)
        assert not result.decisions[2].pin_input

    def test_graph_output_never_pinned(self, solver):
        regions = make_chain(3)
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver=solver).optimize(regions)
        assert not result.decisions[-1].pin_output

    def test_weight_pinning_when_beneficial(self, solver):
        regions = make_chain(3, weight_bytes=50)
        result = FastFusionOptimizer(gm_capacity_bytes=100_000, solver=solver).optimize(regions)
        assert any(d.pin_weights for d in result.decisions)
        assert result.pinned_weight_bytes > 0

    def test_compute_bound_regions_not_pinned(self, solver):
        """Pinning a compute-bound region's tensors yields no benefit."""
        regions = [
            RegionStats(
                index=i, name=f"r{i}", busy_cycles=100.0, t_max_cycles=100.0,
                input_dram_cycles=1.0, weight_dram_cycles=0.0, output_dram_cycles=1.0,
                input_bytes=10, weight_bytes=0, output_bytes=10,
                predecessor=i - 1 if i > 0 else None,
            )
            for i in range(3)
        ]
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver=solver).optimize(regions)
        assert result.total_cycles_post == pytest.approx(result.total_cycles_pre)

    def test_region_time_never_below_busy_floor(self, solver):
        regions = make_chain(4)
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver=solver).optimize(regions)
        for region, cycles in zip(regions, result.region_cycles):
            assert cycles >= region.busy_cycles - 1e-9


class TestSolverSelectionAndQuality:
    def test_auto_uses_ilp_for_small_problems(self):
        optimizer = FastFusionOptimizer(gm_capacity_bytes=10_000, solver="auto")
        result = optimizer.optimize(make_chain(5))
        assert result.solver_status.startswith("ilp")

    def test_auto_uses_greedy_for_large_problems(self):
        optimizer = FastFusionOptimizer(
            gm_capacity_bytes=10_000, solver="auto", greedy_threshold_regions=10
        )
        result = optimizer.optimize(make_chain(20))
        assert result.solver_status == "greedy"

    def test_ilp_at_least_as_good_as_greedy(self):
        regions = make_chain(6, weight_bytes=40)
        capacity = 400
        greedy = FastFusionOptimizer(gm_capacity_bytes=capacity, solver="greedy").optimize(regions)
        ilp = FastFusionOptimizer(gm_capacity_bytes=capacity, solver="ilp").optimize(regions)
        assert ilp.total_cycles_post <= greedy.total_cycles_post + 1e-6

    def test_weight_pinning_prefers_blocking_headroom(self):
        """Per-region blocking usage reduces the capacity available for pinning."""
        regions = make_chain(3, weight_bytes=500)
        heavy_blocking = [
            RegionStats(**{**r.__dict__, "blocking_gm_bytes": 800}) for r in regions
        ]
        result = FastFusionOptimizer(gm_capacity_bytes=1000, solver="greedy").optimize(heavy_blocking)
        assert not any(d.pin_weights for d in result.decisions)

    def test_dram_bytes_saved_reported(self):
        regions = make_chain(4)
        result = FastFusionOptimizer(gm_capacity_bytes=10_000, solver="greedy").optimize(regions)
        assert result.dram_bytes_saved(regions, dram_bytes_per_cycle=10.0) > 0
