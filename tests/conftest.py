"""Shared fixtures for the test suite.

Expensive artifacts (workload graphs, end-to-end simulation results) are
session-scoped so the suite stays fast while still exercising the full stack.
"""

from __future__ import annotations

import pytest

from repro.core.designs import FAST_LARGE, FAST_SMALL, TPU_V3
from repro.hardware.datapath import DatapathConfig
from repro.simulator.engine import Simulator
from repro.workloads.builder import GraphBuilder
from repro.workloads.registry import build_workload


@pytest.fixture(scope="session")
def tiny_graph():
    """A small conv -> relu -> residual add -> dense graph."""
    builder = GraphBuilder("tiny", batch_size=2)
    x = builder.input("images", (2, 16, 16, 8))
    y = builder.conv2d(x, 16, (3, 3), stride=1, name="conv1")
    y = builder.activation(y, "relu", name="relu1")
    z = builder.conv2d(y, 16, (1, 1), stride=1, name="conv2")
    z = builder.add(z, y, name="residual")
    z = builder.reduce_mean(z, name="pool")
    logits = builder.matmul(z, 10, name="fc")
    return builder.finish(outputs=[logits])


@pytest.fixture(scope="session")
def small_config():
    """A modest datapath used by most mapper/simulator tests."""
    return DatapathConfig(
        pes_x_dim=2,
        pes_y_dim=2,
        systolic_array_x=16,
        systolic_array_y=16,
        vector_unit_multiplier=2,
        l1_input_buffer_kib=16,
        l1_weight_buffer_kib=16,
        l1_output_buffer_kib=16,
        l3_global_buffer_mib=8,
        gddr6_channels=2,
        native_batch_size=2,
    )


@pytest.fixture(scope="session")
def tpu_config():
    """The modeled TPU-v3 baseline."""
    return TPU_V3


@pytest.fixture(scope="session")
def fast_large_config():
    """The FAST-Large design from Table 5."""
    return FAST_LARGE


@pytest.fixture(scope="session")
def fast_small_config():
    """The FAST-Small design from Table 5."""
    return FAST_SMALL


@pytest.fixture(scope="session")
def efficientnet_b0():
    """EfficientNet-B0 at batch 1."""
    return build_workload("efficientnet-b0", batch_size=1)


@pytest.fixture(scope="session")
def bert_seq128():
    """BERT-Base at sequence length 128, batch 1."""
    return build_workload("bert-seq128", batch_size=1)


@pytest.fixture(scope="session")
def resnet50():
    """ResNet-50v2 at batch 1."""
    return build_workload("resnet50", batch_size=1)


@pytest.fixture(scope="session")
def b0_on_tpu(tpu_config):
    """EfficientNet-B0 simulated on the TPU-v3 baseline."""
    return Simulator(tpu_config).simulate_workload("efficientnet-b0")


@pytest.fixture(scope="session")
def b0_on_fast_large(fast_large_config):
    """EfficientNet-B0 simulated on FAST-Large."""
    return Simulator(fast_large_config).simulate_workload("efficientnet-b0")


@pytest.fixture(scope="session")
def tiny_on_small(tiny_graph, small_config):
    """The tiny graph simulated on the small datapath."""
    return Simulator(small_config).simulate(tiny_graph)
