"""Tests for trial-cache compaction, eviction, and shard-safe concurrent writes."""

import json
import os
import socket
import subprocess
import threading
import time

import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator, TrialMetrics
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime import TrialCache, compact_cache, problem_fingerprint


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _metrics(score: float = 1.0, feasible: bool = True) -> TrialMetrics:
    return TrialMetrics(
        config=None,
        area_mm2=100.0,
        tdp_w=50.0,
        feasible=feasible,
        failure_reason=None if feasible else "constraints",
        aggregate_score=score,
        objective_value=-score if feasible else float("inf"),
    )


class CountingEvaluator(TrialEvaluator):
    def __init__(self, problem):
        super().__init__(problem)
        self.calls = 0

    def evaluate_params(self, params, space):
        self.calls += 1
        return super().evaluate_params(params, space)


# ---------------------------------------------------------------------------
class TestCompaction:
    def test_compaction_deduplicates_keys(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        for _ in range(3):
            cache.put("k1", _metrics(1.0))
        cache.put("k2", _metrics(2.0))
        assert len(path.read_text().splitlines()) == 4
        stats = cache.compact()
        assert stats.kept == 2
        assert stats.duplicates_dropped == 2
        assert stats.evicted == 0
        assert len(path.read_text().splitlines()) == 2

    def test_compaction_preserves_best_entry_per_key(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        cache.put("k", _metrics(5.0))
        cache.put("k", _metrics(0.0, feasible=False))  # later but worse
        cache.compact()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["metrics"]["feasible"] is True
        assert record["metrics"]["aggregate_score"] == 5.0

    def test_compaction_respects_size_cap_evicting_oldest(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        for i in range(10):
            cache.put(f"k{i}", _metrics(float(i)))
        stats = cache.compact(max_entries=4)
        assert stats.kept == 4
        assert stats.evicted == 6
        keys = [json.loads(line)["key"] for line in path.read_text().splitlines()]
        assert keys == ["k6", "k7", "k8", "k9"]  # least-recently-written evicted

    def test_duplicate_write_bumps_recency(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        cache.put("old_but_hot", _metrics(1.0))
        for i in range(3):
            cache.put(f"k{i}", _metrics(float(i)))
        cache.put("old_but_hot", _metrics(1.0))  # re-written: recently used
        stats = cache.compact(max_entries=2)
        assert stats.kept == 2
        keys = {json.loads(line)["key"] for line in path.read_text().splitlines()}
        assert "old_but_hot" in keys

    def test_warm_hit_after_compaction_returns_identical_metrics(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cold = FASTSearch(_problem(), optimizer="random", seed=3,
                          cache=TrialCache(path)).run(8, batch_size=2)
        compact_cache(path)

        evaluator = CountingEvaluator(_problem())
        warm = FASTSearch(_problem(), optimizer="random", seed=3,
                          evaluator=evaluator, cache=TrialCache(path)).run(8, batch_size=2)
        assert evaluator.calls == 0
        assert warm.runtime.cache_hits == 8
        assert [trial_metrics_to_dict(m) for m in warm.history] == [
            trial_metrics_to_dict(m) for m in cold.history
        ]

    def test_compaction_is_atomic_and_drops_corrupt_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        cache.put("good", _metrics(1.0))
        with path.open("a") as handle:
            handle.write('{"key": "trunca')  # killed-run torso
        stats = TrialCache(path).compact()
        assert stats.kept == 1
        assert not (tmp_path / "cache.jsonl.tmp").exists()
        assert TrialCache(path).get("good") is not None

    def test_compact_requires_a_path(self):
        with pytest.raises(ValueError):
            TrialCache().compact()

    def test_max_disk_entries_is_default_cap(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path, max_disk_entries=3)
        for i in range(6):
            cache.put(f"k{i}", _metrics(float(i)))
        assert cache.compact().kept == 3


# ---------------------------------------------------------------------------
class TestAutoCompaction:
    def test_put_triggers_compaction_past_cap_plus_slack(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cap = 8
        cache = TrialCache(path, max_disk_entries=cap)
        slack = max(16, cap // 4)
        for i in range(cap + slack + 1):
            cache.put(f"k{i}", _metrics(float(i)))
        assert cache.stats.auto_compactions >= 1
        assert len(path.read_text().splitlines()) <= cap

    def test_store_stays_bounded_over_many_puts(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cap = 10
        cache = TrialCache(path, max_disk_entries=cap)
        for i in range(120):
            cache.put(f"k{i}", _metrics(float(i)))
        lines = len(path.read_text().splitlines())
        assert lines <= cap + max(16, cap // 4)
        assert cache.stats.auto_compactions >= 2
        # The most recent entries survive (LRU-by-recency eviction).
        surviving = {json.loads(line)["key"] for line in path.read_text().splitlines()}
        assert f"k119" in surviving or "k119" in cache._memory

    def test_no_auto_compaction_without_cap(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path)
        for i in range(64):
            cache.put(f"k{i}", _metrics(float(i)))
        assert cache.stats.auto_compactions == 0
        assert len(path.read_text().splitlines()) == 64

    def test_sharded_writers_never_auto_compact(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path, writer_id=0, max_disk_entries=4)
        for i in range(64):
            cache.put(f"k{i}", _metrics(float(i)))
        assert cache.stats.auto_compactions == 0
        sidecar = tmp_path / "cache.jsonl.shard-0"
        assert len(sidecar.read_text().splitlines()) == 64

    def test_exclusive_writer_skips_when_sidecars_exist(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        shard = TrialCache(path, writer_id=1)
        shard.put("shard-key", _metrics(1.0))
        exclusive = TrialCache(path, max_disk_entries=4)
        for i in range(64):
            exclusive.put(f"k{i}", _metrics(float(i)))
        # A live shard sidecar blocks auto-compaction entirely.
        assert exclusive.stats.auto_compactions == 0
        assert (tmp_path / "cache.jsonl.shard-1").exists()

    def test_entries_remain_readable_after_auto_compaction(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = TrialCache(path, max_disk_entries=8, max_memory_entries=1)
        for i in range(60):
            cache.put(f"k{i}", _metrics(float(i)))
        assert cache.stats.auto_compactions >= 1
        reloaded = TrialCache(path)
        hit = reloaded.get("k59")
        assert hit is not None
        assert trial_metrics_to_dict(hit) == trial_metrics_to_dict(_metrics(59.0))


# ---------------------------------------------------------------------------
class TestShardSafeWrites:
    def test_writer_id_appends_to_sidecar(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        shard = TrialCache(path, writer_id=2)
        shard.put("k", _metrics(1.0))
        assert not path.exists()
        assert (tmp_path / "cache.jsonl.shard-2").exists()
        # A plain reader sees the sidecar entry.
        assert TrialCache(path).get("k") is not None

    def test_concurrent_shard_writers_never_corrupt_the_store(self, tmp_path):
        """The latent bug class: N concurrent writers appending to one JSONL.
        With per-shard sidecar files every record survives intact."""
        path = tmp_path / "cache.jsonl"
        num_writers, per_writer = 4, 25

        def write_shard(writer_id: int) -> None:
            cache = TrialCache(path, writer_id=writer_id)
            for i in range(per_writer):
                cache.put(f"w{writer_id}-k{i}", _metrics(float(i)))

        threads = [threading.Thread(target=write_shard, args=(w,))
                   for w in range(num_writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        merged = TrialCache(path)
        assert merged.stats.disk_entries_loaded == num_writers * per_writer
        for w in range(num_writers):
            for i in range(per_writer):
                assert f"w{w}-k{i}" in merged

    def test_compaction_folds_sidecars_into_base_file(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        for w in range(3):
            shard = TrialCache(path, writer_id=w)
            shard.put(f"k{w}", _metrics(float(w)))
            shard.put("shared", _metrics(9.0))
        stats = compact_cache(path)
        assert stats.files_merged == 3
        assert stats.kept == 4  # k0, k1, k2, shared
        assert stats.duplicates_dropped == 2
        assert path.exists()
        assert list(tmp_path.glob("cache.jsonl.shard-*")) == []
        reloaded = TrialCache(path)
        assert reloaded.stats.disk_entries_loaded == 4

    def test_orphaned_sidecar_is_folded_by_auto_compaction(self, tmp_path):
        """A sidecar left by a crashed writer must not block auto-compaction."""
        path = tmp_path / "cache.jsonl"
        shard = TrialCache(path, writer_id=7)
        shard.put("crashed-key", _metrics(99.0))
        # Simulate the crash: the owner marker points at a pid that is gone.
        dead = subprocess.Popen(["sleep", "0"])
        dead.wait()
        owner = tmp_path / "cache.jsonl.shard-7.owner"
        owner.write_text(json.dumps({"pid": dead.pid, "host": socket.gethostname()}))

        exclusive = TrialCache(path, max_disk_entries=4)
        for i in range(64):
            exclusive.put(f"k{i}", _metrics(float(i)))
        assert exclusive.stats.auto_compactions >= 1
        assert not (tmp_path / "cache.jsonl.shard-7").exists()
        assert not owner.exists()
        # The orphan's record was folded in, not dropped... unless evicted by
        # the size cap; it must at least never linger in a stale sidecar.
        assert TrialCache(path).get("k63") is not None

    def test_ownerless_sidecar_counts_as_orphaned(self, tmp_path):
        """Legacy / pre-crash sidecars without owner markers are foldable."""
        path = tmp_path / "cache.jsonl"
        sidecar = tmp_path / "cache.jsonl.shard-3"
        record = {"key": "legacy", "ts": time.time(),
                  "metrics": trial_metrics_to_dict(_metrics(1.0))}
        sidecar.write_text(json.dumps(record) + "\n")
        exclusive = TrialCache(path, max_disk_entries=64)
        for i in range(64 + 17):
            exclusive.put(f"k{i}", _metrics(float(i)))
        assert exclusive.stats.auto_compactions >= 1
        assert not sidecar.exists()

    def test_compact_skips_live_foreign_writer_sidecar(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        base = TrialCache(path)
        base.put("base-key", _metrics(1.0))
        sidecar = tmp_path / "cache.jsonl.shard-5"
        record = {"key": "live-key", "ts": time.time(),
                  "metrics": trial_metrics_to_dict(_metrics(2.0))}
        sidecar.write_text(json.dumps(record) + "\n")
        # pid 1 is alive and never ours: a live writer in another process.
        (tmp_path / "cache.jsonl.shard-5.owner").write_text(
            json.dumps({"pid": 1, "host": socket.gethostname()})
        )
        stats = TrialCache(path).compact()
        assert stats.live_writers_skipped == 1
        assert sidecar.exists()  # untouched: the live writer keeps appending
        # The live shard's records stay readable through the union view.
        assert TrialCache(path).get("live-key") is not None

    def test_release_orphans_the_sidecar(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        shard = TrialCache(path, writer_id=2)
        shard.put("k", _metrics(1.0))
        assert (tmp_path / "cache.jsonl.shard-2.owner").exists()
        shard.release()
        assert not (tmp_path / "cache.jsonl.shard-2.owner").exists()
        exclusive = TrialCache(path, max_disk_entries=4)
        for i in range(64):
            exclusive.put(f"k{i}", _metrics(float(i)))
        assert exclusive.stats.auto_compactions >= 1
        assert not (tmp_path / "cache.jsonl.shard-2").exists()

    def test_sharded_writer_reclaims_ownership_after_its_own_compaction(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        shard = TrialCache(path, writer_id=4)
        shard.put("k0", _metrics(1.0))
        shard.compact()  # folds the shard's own sidecar + owner marker
        assert not (tmp_path / "cache.jsonl.shard-4.owner").exists()
        shard.put("k1", _metrics(2.0))  # recreates the sidecar...
        # ...and must re-claim it, or other compactions would treat the
        # still-live writer's sidecar as orphaned and race its appends.
        assert (tmp_path / "cache.jsonl.shard-4.owner").exists()
        assert shard._sidecar_writer_state(tmp_path / "cache.jsonl.shard-4") == "self"

    def test_unknown_host_owner_is_treated_as_live(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        sidecar = tmp_path / "cache.jsonl.shard-9"
        record = {"key": "far-key", "ts": time.time(),
                  "metrics": trial_metrics_to_dict(_metrics(3.0))}
        sidecar.write_text(json.dumps(record) + "\n")
        (tmp_path / "cache.jsonl.shard-9.owner").write_text(
            json.dumps({"pid": 12345, "host": "another-host.example"})
        )
        stats = TrialCache(path).compact()
        assert stats.live_writers_skipped == 1
        assert sidecar.exists()

    def test_search_results_identical_with_and_without_writer_id(self, tmp_path):
        plain = FASTSearch(_problem(), optimizer="random", seed=1,
                           cache=TrialCache(tmp_path / "a.jsonl")).run(6, batch_size=2)
        sharded = FASTSearch(_problem(), optimizer="random", seed=1,
                             cache=TrialCache(tmp_path / "b.jsonl", writer_id=0)).run(
            6, batch_size=2
        )
        assert [trial_metrics_to_dict(m) for m in plain.history] == [
            trial_metrics_to_dict(m) for m in sharded.history
        ]
