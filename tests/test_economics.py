"""Tests for the TCO and ROI models (Section 5.1, Figure 6, Table 4)."""

import pytest

from repro.economics.roi import DEFAULT_NRE, NreParameters, RoiModel
from repro.economics.tco import CostParameters, DGX_A100_BASELINE, total_cost_of_ownership


class TestTco:
    def test_baseline_capital_cost_per_accelerator(self):
        assert DGX_A100_BASELINE.capital_cost_per_accelerator == pytest.approx(199_000 / 8)

    def test_operational_cost_positive_and_smaller_than_capital(self):
        op = DGX_A100_BASELINE.operational_cost_per_accelerator_per_year
        assert 0 < op < DGX_A100_BASELINE.capital_cost_per_accelerator

    def test_tco_scales_linearly_with_volume(self):
        assert total_cost_of_ownership(2000) == pytest.approx(2 * total_cost_of_ownership(1000))

    def test_tco_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            total_cost_of_ownership(-1)

    def test_lifetime_cost_includes_three_years_of_power(self):
        params = CostParameters(
            capital_cost_per_accelerator=10_000,
            power_kw_per_accelerator=1.0,
            electricity_cost_per_kwh=0.1,
            datacenter_pue=1.0,
            deployment_lifetime_years=3.0,
        )
        assert params.lifetime_cost_per_accelerator == pytest.approx(10_000 + 3 * 8760 * 0.1)


class TestRoi:
    @pytest.fixture(scope="class")
    def model(self):
        return RoiModel()

    def test_roi_increases_with_volume(self, model):
        """Figure 6: deployment volume is the dominant factor."""
        assert model.roi(8000, 2.0) > model.roi(2000, 2.0)

    def test_roi_has_diminishing_returns_in_speedup(self, model):
        """Figure 6: 8000 units at 1.5x beats 2000 units at 100x."""
        assert model.roi(8000, 1.5) > model.roi(2000, 100.0)

    def test_roi_zero_when_no_speedup(self, model):
        assert model.roi(5000, 1.0) == pytest.approx(0.0)

    def test_roi_rejects_non_positive_speedup(self, model):
        with pytest.raises(ValueError):
            model.roi(1000, 0.0)

    def test_breakeven_volume_matches_paper_magnitude(self, model):
        """Table 4: break-even for the B7 design (3.91x) is ~2,200 accelerators."""
        volume = model.breakeven_volume(3.91)
        assert 1800 < volume < 2600

    def test_breakeven_ordering_matches_speedups(self, model):
        """Table 4: lower Perf/TCO speedups need larger deployments."""
        assert model.breakeven_volume(1.84) > model.breakeven_volume(2.7) > model.breakeven_volume(3.91)

    def test_volume_scales_linearly_with_roi_target(self, model):
        v1 = model.deployment_volume_for_roi(1.0, 2.82)
        v8 = model.deployment_volume_for_roi(8.0, 2.82)
        assert v8 == pytest.approx(8 * v1, rel=0.01)

    def test_roi_at_breakeven_is_one(self, model):
        volume = model.breakeven_volume(2.5)
        assert model.roi(volume, 2.5) == pytest.approx(1.0, rel=0.01)

    def test_no_finite_breakeven_without_savings(self, model):
        assert model.breakeven_volume(1.0) > 1e12

    def test_roi_curve_matches_pointwise(self, model):
        volumes = [1000, 5000, 10000]
        curve = model.roi_curve(volumes, 3.0)
        assert curve == [model.roi(v, 3.0) for v in volumes]

    def test_nre_total(self):
        nre = NreParameters(
            design_engineer_years=10, cost_per_engineer_year=100_000,
            mask_cost=1_000_000, ip_licensing_cost=500_000,
        )
        assert nre.total == pytest.approx(2_500_000)
        assert DEFAULT_NRE.total > 1e7

    def test_cheaper_nre_lowers_breakeven(self):
        cheap = RoiModel(nre=NreParameters(design_engineer_years=10))
        default = RoiModel()
        assert cheap.breakeven_volume(3.0) < default.breakeven_volume(3.0)
