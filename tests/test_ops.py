"""Tests for per-op FLOP accounting."""

import pytest

from repro.workloads.graph import DType, Operation, Tensor, TensorKind
from repro.workloads.ops import (
    MATRIX_OP_TYPES,
    VECTOR_OP_TYPES,
    OpType,
    is_matrix_op,
    op_flops,
)


def tensors_for(**shapes):
    result = {}
    for name, (shape, kind) in shapes.items():
        result[name] = Tensor(name, tuple(shape), DType.BFLOAT16, kind)
    return result


class TestTaxonomy:
    def test_matrix_and_vector_partition_op_types(self):
        assert MATRIX_OP_TYPES | VECTOR_OP_TYPES == set(OpType)
        assert not (MATRIX_OP_TYPES & VECTOR_OP_TYPES)

    @pytest.mark.parametrize(
        "op_type", [OpType.CONV2D, OpType.DEPTHWISE_CONV2D, OpType.MATMUL, OpType.EINSUM]
    )
    def test_matrix_ops(self, op_type):
        assert is_matrix_op(op_type)

    @pytest.mark.parametrize("op_type", [OpType.SOFTMAX, OpType.ACTIVATION, OpType.POOLING])
    def test_vector_ops(self, op_type):
        assert not is_matrix_op(op_type)


class TestConvFlops:
    def test_conv2d_formula(self):
        # 2 * B * OH * OW * OF * IF * KH * KW
        ts = tensors_for(
            x=((1, 8, 8, 4), TensorKind.ACTIVATION),
            w=((3, 3, 4, 16), TensorKind.WEIGHT),
            y=((1, 8, 8, 16), TensorKind.ACTIVATION),
        )
        op = Operation(
            "c", OpType.CONV2D, ["x", "w"], ["y"],
            {"kernel": (3, 3), "stride": 1, "in_features": 4, "out_features": 16},
        )
        assert op_flops(op, ts) == 2 * 1 * 8 * 8 * 16 * 4 * 3 * 3

    def test_conv2d_scales_with_batch(self):
        def flops(batch):
            ts = tensors_for(
                x=((batch, 8, 8, 4), TensorKind.ACTIVATION),
                w=((3, 3, 4, 16), TensorKind.WEIGHT),
                y=((batch, 8, 8, 16), TensorKind.ACTIVATION),
            )
            op = Operation(
                "c", OpType.CONV2D, ["x", "w"], ["y"],
                {"kernel": (3, 3), "stride": 1, "in_features": 4, "out_features": 16},
            )
            return op_flops(op, ts)

        assert flops(4) == 4 * flops(1)

    def test_depthwise_formula(self):
        # 2 * B * OH * OW * C * KH * KW
        ts = tensors_for(
            x=((2, 8, 8, 32), TensorKind.ACTIVATION),
            w=((3, 3, 32, 1), TensorKind.WEIGHT),
            y=((2, 8, 8, 32), TensorKind.ACTIVATION),
        )
        op = Operation(
            "dw", OpType.DEPTHWISE_CONV2D, ["x", "w"], ["y"],
            {"kernel": (3, 3), "stride": 1, "in_features": 32, "out_features": 32},
        )
        assert op_flops(op, ts) == 2 * 2 * 8 * 8 * 32 * 3 * 3

    def test_depthwise_much_cheaper_than_conv(self):
        """A 3x3 depthwise-separable block uses ~8-9x fewer FLOPs (Section 3.2)."""
        channels = 64
        ts_conv = tensors_for(
            x=((1, 16, 16, channels), TensorKind.ACTIVATION),
            w=((3, 3, channels, channels), TensorKind.WEIGHT),
            y=((1, 16, 16, channels), TensorKind.ACTIVATION),
        )
        conv = Operation(
            "c", OpType.CONV2D, ["x", "w"], ["y"],
            {"kernel": (3, 3), "stride": 1, "in_features": channels, "out_features": channels},
        )
        ts_dw = tensors_for(
            x=((1, 16, 16, channels), TensorKind.ACTIVATION),
            w=((3, 3, channels, 1), TensorKind.WEIGHT),
            y=((1, 16, 16, channels), TensorKind.ACTIVATION),
        )
        dw = Operation(
            "d", OpType.DEPTHWISE_CONV2D, ["x", "w"], ["y"],
            {"kernel": (3, 3), "stride": 1, "in_features": channels, "out_features": channels},
        )
        ts_pw = tensors_for(
            x=((1, 16, 16, channels), TensorKind.ACTIVATION),
            w=((1, 1, channels, channels), TensorKind.WEIGHT),
            y=((1, 16, 16, channels), TensorKind.ACTIVATION),
        )
        pw = Operation(
            "p", OpType.CONV2D, ["x", "w"], ["y"],
            {"kernel": (1, 1), "stride": 1, "in_features": channels, "out_features": channels},
        )
        separable = op_flops(dw, ts_dw) + op_flops(pw, ts_pw)
        ratio = op_flops(conv, ts_conv) / separable
        assert 7.0 < ratio < 9.5


class TestMatmulFlops:
    def test_matmul_formula(self):
        ts = tensors_for(
            x=((4, 128), TensorKind.ACTIVATION),
            w=((128, 256), TensorKind.WEIGHT),
            y=((4, 256), TensorKind.ACTIVATION),
        )
        op = Operation("m", OpType.MATMUL, ["x", "w"], ["y"], {"contracting_dim": 128})
        assert op_flops(op, ts) == 2 * 4 * 256 * 128

    def test_matmul_folds_leading_dims(self):
        ts = tensors_for(
            x=((2, 16, 64), TensorKind.ACTIVATION),
            w=((64, 32), TensorKind.WEIGHT),
            y=((2, 16, 32), TensorKind.ACTIVATION),
        )
        op = Operation("m", OpType.MATMUL, ["x", "w"], ["y"], {"contracting_dim": 64})
        assert op_flops(op, ts) == 2 * 2 * 16 * 32 * 64

    def test_einsum_formula(self):
        ts = tensors_for(
            q=((1, 4, 16, 8), TensorKind.ACTIVATION),
            k=((1, 4, 16, 8), TensorKind.ACTIVATION),
            s=((1, 4, 16, 16), TensorKind.ACTIVATION),
        )
        op = Operation("e", OpType.EINSUM, ["q", "k"], ["s"], {"contracting_dim": 8})
        assert op_flops(op, ts) == 2 * (1 * 4 * 16 * 16) * 8


class TestVectorFlops:
    def test_elementwise_add_one_flop_per_element(self):
        ts = tensors_for(
            a=((2, 32), TensorKind.ACTIVATION),
            b=((2, 32), TensorKind.ACTIVATION),
            y=((2, 32), TensorKind.ACTIVATION),
        )
        op = Operation("add", OpType.ELEMENTWISE_ADD, ["a", "b"], ["y"], {})
        assert op_flops(op, ts) == 64

    def test_softmax_more_expensive_than_add(self):
        ts = tensors_for(
            x=((2, 32), TensorKind.ACTIVATION),
            y=((2, 32), TensorKind.ACTIVATION),
        )
        softmax = Operation("s", OpType.SOFTMAX, ["x"], ["y"], {})
        add = Operation("a", OpType.ELEMENTWISE_ADD, ["x"], ["y"], {})
        assert op_flops(softmax, ts) > op_flops(add, ts)

    def test_pooling_charges_kernel_window(self):
        ts = tensors_for(
            x=((1, 8, 8, 4), TensorKind.ACTIVATION),
            y=((1, 4, 4, 4), TensorKind.ACTIVATION),
        )
        op = Operation("p", OpType.POOLING, ["x"], ["y"], {"kernel": (2, 2), "stride": 2})
        assert op_flops(op, ts) == 4 * 4 * 4 * 4

    def test_reshape_is_free(self):
        ts = tensors_for(
            x=((4, 16), TensorKind.ACTIVATION),
            y=((64,), TensorKind.ACTIVATION),
        )
        op = Operation("r", OpType.RESHAPE, ["x"], ["y"], {})
        assert op_flops(op, ts) == 0
