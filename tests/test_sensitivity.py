"""Tests for the design-sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_PARAMETERS,
    SensitivityEntry,
    sensitivity_analysis,
)
from repro.core.designs import FAST_SMALL


@pytest.fixture(scope="module")
def report():
    return sensitivity_analysis(
        FAST_SMALL,
        "efficientnet-b0",
        parameters=("systolic_array_x", "l3_global_buffer_mib", "native_batch_size"),
        neighbourhood=1,
    )


class TestSensitivityAnalysis:
    def test_one_entry_per_requested_parameter(self, report):
        assert {e.parameter for e in report.entries} == {
            "systolic_array_x",
            "l3_global_buffer_mib",
            "native_batch_size",
        }

    def test_base_score_positive_and_consistent(self, report):
        assert report.base_perf_per_tdp > 0
        for entry in report.entries:
            assert entry.base_perf_per_tdp == pytest.approx(report.base_perf_per_tdp)

    def test_best_at_least_worst(self, report):
        for entry in report.entries:
            assert entry.best_perf_per_tdp >= entry.worst_perf_per_tdp
            assert entry.swing >= 1.0
            assert entry.headroom >= entry.best_perf_per_tdp / entry.base_perf_per_tdp * 0.999

    def test_ranked_orders_by_swing(self, report):
        swings = [e.swing for e in report.ranked()]
        assert swings == sorted(swings, reverse=True)
        assert report.most_sensitive().swing == swings[0]

    def test_best_and_worst_values_are_parameter_choices(self, report):
        from repro.hardware.search_space import DatapathSearchSpace

        space = DatapathSearchSpace()
        for entry in report.entries:
            choices = space.spec(entry.parameter).choices
            assert entry.best_value in choices
            assert entry.worst_value in choices

    def test_default_parameter_list_is_valid(self):
        from repro.hardware.search_space import DatapathSearchSpace

        space = DatapathSearchSpace()
        for name in DEFAULT_PARAMETERS:
            assert space.spec(name).cardinality > 1

    def test_entry_handles_zero_worst_gracefully(self):
        entry = SensitivityEntry(
            parameter="x", base_value=1, best_value=2, worst_value=4,
            base_perf_per_tdp=1.0, best_perf_per_tdp=2.0, worst_perf_per_tdp=0.0,
        )
        assert entry.swing == float("inf")
