"""Tests for the branch-and-bound 0/1 MILP solver."""

import numpy as np
import pytest

from repro.fusion.ilp import BranchAndBoundSolver, IlpProblem


def knapsack_problem(values, weights, capacity):
    """Maximize value <=> minimize -value subject to weight <= capacity."""
    n = len(values)
    return IlpProblem(
        objective=-np.asarray(values, dtype=float),
        constraint_matrix=np.asarray(weights, dtype=float).reshape(1, n),
        constraint_bounds=np.array([capacity], dtype=float),
        integer_mask=np.ones(n, dtype=bool),
        lower_bounds=np.zeros(n),
        upper_bounds=np.ones(n),
    )


class TestProblemValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IlpProblem(
                objective=np.ones(3),
                constraint_matrix=np.ones((1, 2)),
                constraint_bounds=np.ones(1),
                integer_mask=np.ones(3, dtype=bool),
                lower_bounds=np.zeros(3),
                upper_bounds=np.ones(3),
            )

    def test_is_feasible_checks_bounds_and_constraints(self):
        problem = knapsack_problem([1, 1], [1, 1], capacity=1)
        assert problem.is_feasible(np.array([1.0, 0.0]))
        assert not problem.is_feasible(np.array([1.0, 1.0]))
        assert not problem.is_feasible(np.array([0.5, 0.0]))  # fractional binary
        assert not problem.is_feasible(np.array([2.0, 0.0]))  # out of bounds


class TestKnapsack:
    def test_simple_knapsack_optimum(self):
        # values 10, 6, 4; weights 5, 4, 3; capacity 7 -> take items 1 and 2 (value 10)? no:
        # best is item0 alone (10) vs items 1+2 (10, weight 7). Both optimal with value 10.
        problem = knapsack_problem([10, 6, 4], [5, 4, 3], capacity=7)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.feasible
        assert -solution.objective_value == pytest.approx(10.0)

    def test_knapsack_where_greedy_by_density_fails(self):
        # Density-greedy picks item 0 (highest value/weight) and then nothing
        # else fits; the optimum is items 1+2 with total value 9.
        problem = knapsack_problem([6, 4.5, 4.5], [1.2, 1.1, 0.9], capacity=2)
        solution = BranchAndBoundSolver().solve(problem)
        assert -solution.objective_value == pytest.approx(9.0)

    def test_zero_capacity_selects_nothing(self):
        problem = knapsack_problem([5, 5], [1, 1], capacity=0)
        solution = BranchAndBoundSolver().solve(problem)
        assert -solution.objective_value == pytest.approx(0.0)

    def test_all_items_fit(self):
        problem = knapsack_problem([1, 2, 3], [1, 1, 1], capacity=10)
        solution = BranchAndBoundSolver().solve(problem)
        assert -solution.objective_value == pytest.approx(6.0)

    def test_matches_brute_force_on_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            n = 8
            values = rng.integers(1, 20, size=n).astype(float)
            weights = rng.integers(1, 10, size=n).astype(float)
            capacity = float(weights.sum() * 0.4)
            best = 0.0
            for mask in range(1 << n):
                chosen = [(mask >> i) & 1 for i in range(n)]
                if np.dot(chosen, weights) <= capacity:
                    best = max(best, float(np.dot(chosen, values)))
            solution = BranchAndBoundSolver(max_nodes=5000).solve(
                knapsack_problem(values, weights, capacity)
            )
            assert -solution.objective_value == pytest.approx(best)


class TestMixedIntegerAndLimits:
    def test_continuous_variables_optimized(self):
        # min T subject to T >= 10 - 4*p, p binary, and p costs nothing: pick p=1, T=6.
        problem = IlpProblem(
            objective=np.array([0.0, 1.0]),
            constraint_matrix=np.array([[-4.0, -1.0]]),
            constraint_bounds=np.array([-10.0]),
            integer_mask=np.array([True, False]),
            lower_bounds=np.array([0.0, 0.0]),
            upper_bounds=np.array([1.0, 100.0]),
        )
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.feasible
        assert solution.objective_value == pytest.approx(6.0)
        assert solution.x[0] == pytest.approx(1.0)

    def test_infeasible_problem_reports_infeasible(self):
        problem = IlpProblem(
            objective=np.array([1.0]),
            constraint_matrix=np.array([[1.0], [-1.0]]),
            constraint_bounds=np.array([0.0, -2.0]),  # x <= 0 and x >= 2
            integer_mask=np.array([True]),
            lower_bounds=np.array([0.0]),
            upper_bounds=np.array([1.0]),
        )
        solution = BranchAndBoundSolver().solve(problem)
        assert not solution.feasible

    def test_node_limit_still_returns_incumbent(self):
        rng = np.random.default_rng(3)
        n = 20
        problem = knapsack_problem(
            rng.integers(1, 30, size=n).astype(float),
            rng.integers(1, 10, size=n).astype(float),
            capacity=40.0,
        )
        solution = BranchAndBoundSolver(max_nodes=3).solve(problem)
        assert solution.feasible
        assert solution.status in ("incumbent", "optimal")

    def test_optimal_status_when_tree_exhausted(self):
        problem = knapsack_problem([3, 2], [2, 1], capacity=2)
        solution = BranchAndBoundSolver().solve(problem)
        assert solution.optimal
        assert solution.status == "optimal"
