"""Tests for the reporting layer: tables, ASCII plots, experiment registry."""

from __future__ import annotations

import pytest

from repro.reporting.ascii_plots import bar_chart, line_plot, sparkline
from repro.reporting.experiments import EXPERIMENTS, list_experiments, run_experiment
from repro.reporting.tables import format_kv, format_table, to_csv, to_markdown


class TestTables:
    HEADERS = ["Model", "Speedup", "Notes"]
    ROWS = [["efficientnet-b7", 6.4, "depthwise heavy"], ["bert-1024", 2.7, "attention bound"]]

    def test_format_table_aligns_columns(self):
        text = format_table(self.HEADERS, self.ROWS)
        lines = text.splitlines()
        assert len(lines) == 2 + len(self.ROWS)
        assert lines[0].startswith("Model")
        assert set(lines[1].replace(" ", "")) == {"-"}
        # All rows should be at least as wide as the longest cell prefix.
        assert "efficientnet-b7" in lines[2]

    def test_format_table_handles_empty_rows(self):
        text = format_table(self.HEADERS, [])
        assert len(text.splitlines()) == 2

    def test_format_kv_alignment_and_title(self):
        text = format_kv({"alpha": 1, "much_longer_key": 2.5}, title="Summary")
        lines = text.splitlines()
        assert lines[0] == "Summary"
        assert lines[1].index("1") == lines[2].index("2.5")

    def test_to_csv_roundtrip(self):
        text = to_csv(self.HEADERS, self.ROWS)
        assert text.splitlines()[0] == "Model,Speedup,Notes"
        assert len(text.splitlines()) == 3

    def test_to_markdown_structure(self):
        text = to_markdown(self.HEADERS, self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| Model")
        assert lines[1].count("---") == 3
        assert len(lines) == 4


class TestAsciiPlots:
    def test_bar_chart_contains_labels_and_bars(self):
        chart = bar_chart({"a": 1.0, "bb": 3.0}, width=10, unit="x")
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") > lines[0].count("█")

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="empty") == "empty"

    def test_sparkline_length_and_extremes(self):
        spark = sparkline([0, 1, 2, 3, 4])
        assert len(spark) == 5
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_sparkline_constant_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_line_plot_contains_series_markers_and_legend(self):
        plot = line_plot({"random": [1, 2, 3], "lcs": [1, 3, 5]}, title="convergence")
        assert "convergence" in plot
        assert "* random" in plot
        assert "o lcs" in plot

    def test_line_plot_empty_series(self):
        assert line_plot({"empty": []}, title="t") == "t"


class TestExperimentRegistry:
    def test_all_experiments_listed(self):
        names = {spec.name for spec in list_experiments()}
        assert {"table1", "table2", "fig3", "fig5", "fig6", "table4", "table5", "fig13"} <= names

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_registry_entries_have_titles_and_runners(self):
        for spec in EXPERIMENTS.values():
            assert spec.title
            assert callable(spec.runner)

    def test_table1_report(self):
        report = run_experiment("table1")
        assert "efficientnet-b7" in report.text
        assert "Max Working Set" in report.text
        assert report.experiment == "table1"

    def test_fig3_report_with_reduced_batches(self):
        report = run_experiment("fig3", batch_sizes=(1,))
        assert "bert-seq1024" in report.text
        assert "Ideal" in report.text

    def test_fig6_roi_rows(self):
        report = run_experiment("fig6")
        assert "Volume" in report.text
        assert "100.0x" in report.text or "100x" in report.text

    def test_str_rendering_includes_notes(self):
        report = run_experiment("fig6")
        rendered = str(report)
        assert rendered.startswith("===== fig6")
        assert "Notes:" in rendered

    def test_fig13_on_small_workload(self):
        report = run_experiment("fig13", workload="efficientnet-b0")
        assert "Batch" in report.text
