"""Remote evaluation service, async remote executor, and cross-shard exchange.

The fault-injection fixture drives the retry / hedging / blacklist /
straggler paths of :class:`~repro.runtime.remote.AsyncRemoteExecutor`
against a real in-process :class:`~repro.runtime.service.EvaluationService`:
a :class:`~repro.runtime.faults.FaultPlan` (the runtime's real injector,
attached as the service's ``fault_injector``) decides, per incoming
request, whether the service answers normally, delays, returns an error,
or drops the connection.

The invariant under test everywhere: faults may slow a batch down or fail it
loudly, but the merged trial history is either bit-for-bit equal to the
serial executor's or an exception is raised — never reordered, never
partial.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime.exchange import (
    ExchangeClient,
    FileScoreboard,
    ScoreRecord,
    ServiceScoreboard,
    make_scoreboard,
)
from repro.runtime.executor import SerialExecutor, make_executor, register_executor
from repro.runtime.faults import FaultPlan
from repro.runtime.remote import AsyncRemoteExecutor, RemoteExecutionError
from repro.runtime.service import EvaluationService
from repro.runtime.sharding import run_sharded_sweep
from repro.search.annealing import SimulatedAnnealingOptimizer
from repro.search.bayesian import BayesianOptimizer


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _history_dicts(result):
    return [trial_metrics_to_dict(m) for m in result.history]


@pytest.fixture(scope="module")
def serial_reference():
    """The 16-trial serial history every remote run must reproduce."""
    return FASTSearch(_problem(), optimizer="lcs", seed=0).run(num_trials=16, batch_size=4)


@pytest.fixture()
def flaky_service():
    """A running evaluation service with an attached :class:`FaultPlan`."""
    service = EvaluationService()
    plan = FaultPlan()
    service.fault_injector = plan
    service.start()
    yield service, plan
    service.close()


def _remote(urls, **overrides):
    options = dict(timeout=30.0, max_retries=3, backoff=0.01, hedge_after=None)
    options.update(overrides)
    return AsyncRemoteExecutor(urls, **options)


def _run_remote(executor, trials=16, batch_size=4, seed=0):
    try:
        return FASTSearch(_problem(), optimizer="lcs", seed=seed, executor=executor).run(
            num_trials=trials, batch_size=batch_size
        )
    finally:
        executor.close()


# ---------------------------------------------------------------------------
# Happy path: equivalence and stats plumbing
# ---------------------------------------------------------------------------
class TestRemoteEquivalence:
    def test_remote_reproduces_serial_history(self, flaky_service, serial_reference):
        service, _ = flaky_service
        result = _run_remote(_remote([service.url]))
        assert result.proposals == serial_reference.proposals
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.best_score_curve == serial_reference.best_score_curve

    def test_runtime_stats_carry_endpoint_counters(self, flaky_service):
        service, _ = flaky_service
        result = _run_remote(_remote([service.url]))
        stats = result.runtime
        assert stats.remote_batches == 4
        assert stats.remote_requests >= 4
        assert service.url in stats.endpoint_stats
        per_endpoint = stats.endpoint_stats[service.url]
        assert per_endpoint["successes"] == per_endpoint["requests"] >= 4
        assert per_endpoint["latency_seconds"] > 0

    def test_chunks_split_across_endpoints(self, serial_reference):
        with EvaluationService() as a, EvaluationService() as b:
            executor = _remote([a.url, b.url])
            result = _run_remote(executor)
            assert _history_dicts(result) == _history_dicts(serial_reference)
            requests = {
                url: counters["requests"]
                for url, counters in result.runtime.endpoint_stats.items()
            }
            assert all(count > 0 for count in requests.values())

    def test_restricted_space_shard_evaluates_remotely(self, flaky_service):
        """Space-mode shards ship their restricted space with each request."""
        from repro.runtime.sharding import ShardSpec, run_shard

        service, _ = flaky_service
        spec = ShardSpec(
            shard_id=0, num_shards=2, seed=11, num_trials=6,
            mode="space", partition_axis="l3_global_buffer_mib",
        )
        local = run_shard(_problem(), spec, optimizer="random", batch_size=3)
        executor = _remote([service.url])
        try:
            remote = run_shard(
                _problem(), spec, optimizer="random", batch_size=3, executor=executor
            )
        finally:
            executor.close()
        assert remote.proposals == local.proposals
        assert [trial_metrics_to_dict(m) for m in remote.history] == [
            trial_metrics_to_dict(m) for m in local.history
        ]
        assert service.stats.fingerprint_rejections == 0

    def test_order_preserved_with_single_trial_chunks(self, flaky_service):
        service, plan = flaky_service
        # Delay a middle request: its chunk must still land in its slot.
        plan.at(2, ("delay", 0.4))
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        rng = np.random.default_rng(3)
        batch = [space.sample(rng) for _ in range(5)]
        expected = SerialExecutor().evaluate_batch(evaluator, space, batch)
        executor = _remote([service.url], chunk_size=1)
        try:
            got = executor.evaluate_batch(evaluator, space, batch)
        finally:
            executor.close()
        assert [trial_metrics_to_dict(m) for m in got] == [
            trial_metrics_to_dict(m) for m in expected
        ]


# ---------------------------------------------------------------------------
# Fault injection: retry, timeout, hedging, blacklist
# ---------------------------------------------------------------------------
class TestFaultHandling:
    def test_transient_errors_are_retried(self, flaky_service, serial_reference):
        service, plan = flaky_service
        plan.at(0, ("error",)).at(1, ("error",))
        executor = _remote([service.url])
        result = _run_remote(executor)
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_retries >= 1
        assert result.runtime.remote_failures >= 1

    def test_dropped_connections_are_retried(self, flaky_service, serial_reference):
        service, plan = flaky_service
        plan.at(0, ("drop",))
        result = _run_remote(_remote([service.url]))
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_retries >= 1

    def test_timeouts_are_retried(self, flaky_service, serial_reference):
        service, plan = flaky_service
        plan.at(0, ("delay", 2.0))
        executor = _remote([service.url], timeout=0.5)
        result = _run_remote(executor)
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_retries >= 1
        assert result.runtime.endpoint_stats[service.url]["timeouts"] >= 1

    def test_straggler_is_hedged_first_result_wins(self, serial_reference):
        with EvaluationService() as healthy:
            slow = EvaluationService()
            plan = FaultPlan()
            slow.fault_injector = plan
            plan.default = ("delay", 5.0)  # every request to `slow` straggles
            slow.start()
            try:
                executor = _remote(
                    [slow.url, healthy.url],
                    hedge_after=0.2,
                    timeout=30.0,
                    max_retries=2,
                )
                result = _run_remote(executor)
            finally:
                slow.close()
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_hedges >= 1
        # Hedges were re-dispatched away from the straggler.
        assert result.runtime.endpoint_stats[healthy.url]["successes"] >= 1

    def test_failing_endpoint_is_blacklisted(self, flaky_service, serial_reference):
        bad = EvaluationService()
        bad_plan = FaultPlan()
        bad_plan.default = ("error",)
        bad.fault_injector = bad_plan
        bad.start()
        service, _ = flaky_service
        try:
            executor = _remote([bad.url, service.url], blacklist_after=2)
            result = _run_remote(executor)
        finally:
            bad.close()
        assert _history_dicts(result) == _history_dicts(serial_reference)
        endpoint = result.runtime.endpoint_stats[bad.url]
        assert endpoint["failures"] >= 2
        assert endpoint["blacklisted"] == 1.0
        assert result.runtime.endpoint_stats[service.url]["successes"] > 0

    def test_all_endpoints_failing_raises_without_fallback(self, flaky_service):
        service, plan = flaky_service
        plan.default = ("error",)
        executor = _remote([service.url], max_retries=1, local_fallback=False)
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        batch = [space.sample(np.random.default_rng(0))]
        try:
            with pytest.raises(RemoteExecutionError):
                executor.evaluate_batch(evaluator, space, batch)
        finally:
            executor.close()

    def test_all_endpoints_failing_falls_back_locally(self, flaky_service):
        """Default behavior: an unevaluable batch degrades to in-process
        serial evaluation instead of failing the search."""
        service, plan = flaky_service
        plan.default = ("error",)
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        batch = [space.sample(np.random.default_rng(0)) for _ in range(3)]
        expected = SerialExecutor().evaluate_batch(evaluator, space, batch)
        executor = _remote([service.url], max_retries=1)
        try:
            got = executor.evaluate_batch(evaluator, space, batch)
            counters = executor.runtime_counters()
        finally:
            executor.close()
        assert [trial_metrics_to_dict(m) for m in got] == [
            trial_metrics_to_dict(m) for m in expected
        ]
        assert counters["remote_fallbacks"] == 1

    def test_fallback_search_reproduces_serial_history(self, flaky_service,
                                                       serial_reference):
        service, plan = flaky_service
        plan.default = ("error",)
        executor = _remote([service.url], max_retries=1)
        result = _run_remote(executor)
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_fallbacks == 4  # every batch degraded

    def test_blacklisting_every_endpoint_forgives_gracefully(self, flaky_service,
                                                             serial_reference):
        service, plan = flaky_service
        plan.at(0, ("error",)).at(1, ("error",))
        # blacklist_after=1: the sole endpoint is blacklisted on the first
        # error, then forgiven because it is all we have.
        executor = _remote([service.url], blacklist_after=1, max_retries=3)
        result = _run_remote(executor)
        assert _history_dicts(result) == _history_dicts(serial_reference)
        assert result.runtime.remote_blacklist_resets >= 1


# ---------------------------------------------------------------------------
# Service protocol
# ---------------------------------------------------------------------------
class TestServiceProtocol:
    def test_health_endpoint(self, flaky_service):
        service, _ = flaky_service
        with urllib.request.urlopen(service.url + "/health", timeout=5) as response:
            body = json.loads(response.read())
        assert body["status"] == "ok"
        assert body["requests"] >= 1

    def test_fingerprint_mismatch_is_rejected(self, flaky_service):
        service, _ = flaky_service
        payload = {
            "fingerprint": "not-the-real-fingerprint",
            "problem": {"workloads": ["efficientnet-b0"], "objective": "perf_per_tdp"},
            "options": {"num_cores": 1, "simulation_options": {"fusion_solver": "greedy"}},
            "params": [],
        }
        request = urllib.request.Request(
            service.url + "/evaluate",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 409
        body = json.loads(excinfo.value.read())
        assert body["client_fingerprint"] == "not-the-real-fingerprint"
        assert service.stats.fingerprint_rejections == 1

    def test_malformed_request_is_a_client_error(self, flaky_service):
        service, _ = flaky_service
        request = urllib.request.Request(
            service.url + "/evaluate",
            data=b"{\"problem\": {}}",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_malformed_scoreboard_record_is_a_client_error(self, flaky_service):
        service, _ = flaky_service
        request = urllib.request.Request(
            service.url + "/scoreboard",
            data=json.dumps({"shard_id": 1, "objective": 2.0, "trials": "abc"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert service.scoreboard_snapshot() == {"scores": {}}

    def test_unknown_path_is_404(self, flaky_service):
        service, _ = flaky_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.url + "/nope", timeout=5)
        assert excinfo.value.code == 404


# ---------------------------------------------------------------------------
# Executor registry
# ---------------------------------------------------------------------------
class TestExecutorRegistry:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor(kind="quantum")

    def test_remote_kind_requires_endpoints(self):
        with pytest.raises(ValueError, match="endpoint"):
            make_executor(kind="remote")

    def test_custom_kind_can_register(self):
        try:
            register_executor("custom-serial", lambda **_: SerialExecutor())
            assert isinstance(make_executor(kind="custom-serial"), SerialExecutor)
        finally:
            from repro.runtime.executor import EXECUTOR_KINDS

            EXECUTOR_KINDS.pop("custom-serial", None)

    def test_default_kinds_unchanged(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert make_executor(2).name == "parallel"


# ---------------------------------------------------------------------------
# Cross-shard exchange
# ---------------------------------------------------------------------------
class TestScoreboards:
    def test_file_scoreboard_roundtrip(self, tmp_path):
        board = FileScoreboard(tmp_path / "scores.json")
        board.publish(ScoreRecord(shard_id=0, objective=-2.0, score=2.0, trials=8))
        board.publish(ScoreRecord(shard_id=1, objective=-3.0, score=3.0, trials=8))
        # A worse later publish must not clobber a shard's best.
        board.publish(ScoreRecord(shard_id=1, objective=-1.0, score=1.0, trials=16))
        scores = board.poll()
        assert set(scores) == {0, 1}
        assert scores[1].objective == -3.0
        best = board.best_external(0)
        assert best is not None and best.shard_id == 1

    def test_file_scoreboard_own_shard_excluded(self, tmp_path):
        board = FileScoreboard(tmp_path / "scores.json")
        board.publish(ScoreRecord(shard_id=0, objective=-2.0, score=2.0))
        assert board.best_external(0) is None

    def test_service_scoreboard_roundtrip(self, flaky_service):
        service, _ = flaky_service
        board = ServiceScoreboard(service.url)
        board.publish(ScoreRecord(shard_id=2, objective=-5.0, score=5.0, trials=4))
        board.publish(ScoreRecord(shard_id=2, objective=-4.0, score=4.0, trials=8))
        scores = board.poll()
        assert scores[2].objective == -5.0
        assert board.best_external(0).shard_id == 2

    def test_make_scoreboard_dispatch(self, tmp_path):
        assert isinstance(make_scoreboard(tmp_path / "s.json"), FileScoreboard)
        assert isinstance(make_scoreboard("http://localhost:1"), ServiceScoreboard)
        board = FileScoreboard(tmp_path / "s.json")
        assert make_scoreboard(board) is board

    def test_exchange_client_feeds_only_improvements(self, tmp_path):
        board = FileScoreboard(tmp_path / "scores.json")
        client = ExchangeClient(board, shard_id=0)
        board.publish(ScoreRecord(shard_id=1, objective=-2.0, score=2.0))
        first = client.poll_external_best()
        assert first is not None and first.objective == -2.0
        assert client.poll_external_best() is None  # no improvement since
        board.publish(ScoreRecord(shard_id=2, objective=-3.0, score=3.0))
        assert client.poll_external_best().objective == -3.0
        assert client.adopted == 2


class TestExchangeHooks:
    def test_annealing_adopts_external_incumbent_without_rng_use(self):
        space = DatapathSearchSpace()
        optimizer = SimulatedAnnealingOptimizer(space, seed=0)
        params = space.sample(np.random.default_rng(0))
        state_before = optimizer.rng.bit_generator.state
        optimizer.observe_external_best(-10.0, params)
        assert optimizer.rng.bit_generator.state == state_before
        assert optimizer.incumbent == params
        # A worse external best never displaces the incumbent.
        other = space.sample(np.random.default_rng(1))
        optimizer.observe_external_best(-5.0, other)
        assert optimizer.incumbent == params

    def test_annealing_ignores_scores_without_params(self):
        optimizer = SimulatedAnnealingOptimizer(DatapathSearchSpace(), seed=0)
        optimizer.observe_external_best(-10.0, None)
        assert optimizer.incumbent is None

    def test_bayesian_tightens_incumbent_best_y(self):
        space = DatapathSearchSpace()
        optimizer = BayesianOptimizer(space, seed=0, num_initial_random=2)
        rng = np.random.default_rng(0)
        for objective in (-1.0, -2.0, -1.5):
            optimizer.tell(space.sample(rng), objective)
        usable = [obs for obs in optimizer.observations if math.isfinite(obs.objective)]
        _, _, best_plain = optimizer._training_data(usable)
        optimizer.observe_external_best(-50.0)
        _, _, best_external = optimizer._training_data(usable)
        assert best_external < best_plain

    def test_sweep_with_exchange_is_deterministic(self, tmp_path):
        kwargs = dict(
            total_trials=12,
            num_shards=2,
            optimizer="annealing",
            seed=7,
            batch_size=4,
        )
        first = run_sharded_sweep(
            _problem(), exchange=tmp_path / "a" / "scores.json", **kwargs
        )
        second = run_sharded_sweep(
            _problem(), exchange=tmp_path / "b" / "scores.json", **kwargs
        )
        assert [t.params for t in first.trials] == [t.params for t in second.trials]
        assert first.runtime.exchange_published == second.runtime.exchange_published
        assert first.runtime.exchange_published >= 1

    def test_one_shard_sweep_with_exchange_matches_plain_search(self, tmp_path):
        plain = FASTSearch(_problem(), optimizer="annealing", seed=3).run(
            num_trials=12, batch_size=4
        )
        sweep = run_sharded_sweep(
            _problem(),
            total_trials=12,
            num_shards=1,
            optimizer="annealing",
            seed=3,
            batch_size=4,
            exchange=tmp_path / "scores.json",
        )
        assert [t.params for t in sweep.trials] == plain.proposals
        assert [trial_metrics_to_dict(t.metrics) for t in sweep.trials] == _history_dicts(
            plain
        )

    def test_exchange_off_is_the_default(self, tmp_path):
        sweep = run_sharded_sweep(
            _problem(), total_trials=8, num_shards=2, optimizer="annealing", seed=1
        )
        assert sweep.runtime.exchange_published == 0
        assert list(tmp_path.iterdir()) == []
