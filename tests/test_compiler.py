"""Tests for compiler passes: XLA fusion regions, softmax lowerings, pipeline."""

import numpy as np
import pytest

from repro.compiler.passes import compile_graph
from repro.compiler.softmax import (
    THREE_PASS_SOFTMAX,
    TWO_PASS_SOFTMAX,
    reference_softmax,
    softmax_cost_factors,
    three_pass_softmax,
    two_pass_softmax,
)
from repro.compiler.xla_fusion import build_fusion_regions
from repro.workloads.builder import GraphBuilder
from repro.workloads.ops import OpType
from repro.workloads.registry import build_workload


class TestFusionRegions:
    def test_each_region_has_at_most_one_anchor_matrix_op(self, efficientnet_b0):
        regions = build_fusion_regions(efficientnet_b0)
        for region in regions:
            anchors = [op for op in region.ops if op is region.matrix_op]
            assert len(anchors) <= 1

    def test_every_op_appears_exactly_once(self, efficientnet_b0):
        regions = build_fusion_regions(efficientnet_b0)
        names = [op.name for region in regions for op in region.ops]
        assert sorted(names) == sorted(op.name for op in efficientnet_b0.ops)

    def test_elementwise_ops_fused_with_producer(self, tiny_graph):
        regions = build_fusion_regions(tiny_graph)
        conv_region = next(r for r in regions if r.matrix_op and r.matrix_op.name == "conv1")
        member_names = {op.name for op in conv_region.ops}
        assert "relu1" in member_names

    def test_internal_tensors_do_not_escape(self, tiny_graph):
        regions = build_fusion_regions(tiny_graph)
        for region in regions:
            member = {op.name for op in region.ops}
            for tname in region.internal_tensors:
                consumers = tiny_graph.consumers(tname)
                assert all(c.name in member for c in consumers)
                assert tname not in tiny_graph.output_names

    def test_region_inputs_are_external(self, tiny_graph):
        regions = build_fusion_regions(tiny_graph)
        for region in regions:
            produced = {t for op in region.ops for t in op.outputs}
            for tname in region.input_tensors:
                assert tname not in produced

    def test_weight_tensors_separated_from_activations(self, tiny_graph):
        regions = build_fusion_regions(tiny_graph)
        all_weights = {name for region in regions for name in region.weight_tensors}
        assert all(
            tiny_graph.tensor(name).kind.value in ("weight", "constant") for name in all_weights
        )

    def test_large_matmuls_anchor_their_own_regions(self, bert_seq128):
        regions = build_fusion_regions(bert_seq128)
        matmul_anchors = [r for r in regions if r.matrix_op and r.matrix_op.op_type is OpType.MATMUL]
        # 12 layers x (3 QKV + attention output + 2 FFN) = 72 large matmuls.
        assert len(matmul_anchors) >= 72

    def test_small_se_convs_absorbed_into_producer_region(self, efficientnet_b0):
        regions = build_fusion_regions(efficientnet_b0)
        # Squeeze-and-excite reduce/expand convs should not anchor regions.
        for region in regions:
            if region.matrix_op is not None:
                assert ".se_reduce" not in region.matrix_op.name
                assert ".se_expand" not in region.matrix_op.name

    def test_fewer_regions_than_ops(self, efficientnet_b0):
        regions = build_fusion_regions(efficientnet_b0)
        assert len(regions) < len(efficientnet_b0.ops)

    def test_region_byte_accessors(self, tiny_graph):
        regions = build_fusion_regions(tiny_graph)
        for region in regions:
            assert region.input_bytes(tiny_graph) >= 0
            assert region.output_bytes(tiny_graph) >= 0
            assert region.weight_bytes(tiny_graph) >= 0


class TestSoftmaxLowering:
    def test_two_pass_matches_reference(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(4, 33)) * 10
        np.testing.assert_allclose(two_pass_softmax(values), reference_softmax(values), rtol=1e-10)

    def test_three_pass_matches_reference(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(3, 17)) * 5
        np.testing.assert_allclose(three_pass_softmax(values), reference_softmax(values), rtol=1e-10)

    def test_numerically_stable_for_large_inputs(self):
        values = np.array([[1000.0, 1000.5, 999.0]])
        out = two_pass_softmax(values)
        assert np.all(np.isfinite(out))
        assert out.sum() == pytest.approx(1.0)

    def test_two_pass_reduces_traffic_but_adds_flops(self):
        assert TWO_PASS_SOFTMAX.output_traffic_factor < THREE_PASS_SOFTMAX.output_traffic_factor
        assert TWO_PASS_SOFTMAX.flops_factor > THREE_PASS_SOFTMAX.flops_factor

    def test_factor_selection(self):
        assert softmax_cost_factors(True) is TWO_PASS_SOFTMAX
        assert softmax_cost_factors(False) is THREE_PASS_SOFTMAX


class TestCompilePipeline:
    def test_compile_graph_produces_regions(self, tiny_graph):
        compiled = compile_graph(tiny_graph)
        assert compiled.num_regions == len(compiled.regions) > 0
        assert not compiled.use_two_pass_softmax

    def test_two_pass_flag_propagates(self, bert_seq128):
        compiled = compile_graph(bert_seq128, use_two_pass_softmax=True)
        assert compiled.softmax_factors is TWO_PASS_SOFTMAX

    def test_region_of_lookup(self, tiny_graph):
        compiled = compile_graph(tiny_graph)
        region = compiled.region_of("conv1")
        assert any(op.name == "conv1" for op in region.ops)
        with pytest.raises(KeyError):
            compiled.region_of("not_an_op")

    def test_internal_traffic_saved_positive_for_fused_models(self, efficientnet_b0):
        compiled = compile_graph(efficientnet_b0)
        assert compiled.internal_traffic_saved_bytes() > 0

    def test_op_type_histogram_counts_all_ops(self, tiny_graph):
        compiled = compile_graph(tiny_graph)
        assert sum(compiled.op_type_histogram().values()) == len(tiny_graph)
