"""Tests for the memory hierarchy view, the search space, and the TPU baseline."""

import numpy as np
import pytest

from repro.hardware.datapath import BufferConfig, DatapathConfig, L2Config
from repro.hardware.memory import MemoryHierarchy, MemoryLevelName
from repro.hardware.search_space import DatapathSearchSpace
from repro.hardware.tpu import TPU_V3, default_constraints
from repro.hardware.area_power import AreaPowerModel


class TestMemoryHierarchy:
    def test_levels_order_innermost_first(self, small_config):
        hierarchy = MemoryHierarchy(small_config)
        names = [level.name for level in hierarchy.levels]
        assert names[0] is MemoryLevelName.L1
        assert names[-1] is MemoryLevelName.DRAM

    def test_l2_absent_when_disabled(self, small_config):
        hierarchy = MemoryHierarchy(small_config)
        assert not hierarchy.has_l2
        assert hierarchy.level(MemoryLevelName.L2) is None

    def test_l2_present_when_enabled(self):
        config = DatapathConfig(l2_buffer_config=L2Config.SHARED)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.has_l2

    def test_global_buffer_optional(self):
        with_gm = MemoryHierarchy(DatapathConfig(l3_global_buffer_mib=64))
        without = MemoryHierarchy(DatapathConfig(l3_global_buffer_mib=0))
        assert with_gm.has_global_buffer
        assert not without.has_global_buffer

    def test_shared_l1_pools_capacity(self):
        private = MemoryHierarchy(DatapathConfig(l1_buffer_config=BufferConfig.PRIVATE))
        shared = MemoryHierarchy(DatapathConfig(l1_buffer_config=BufferConfig.SHARED))
        assert (
            shared.level(MemoryLevelName.L1).capacity_bytes
            > private.level(MemoryLevelName.L1).capacity_bytes
        )

    def test_blocking_capacity_reserves_global_memory_for_fusion(self):
        config = DatapathConfig(l3_global_buffer_mib=64)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.blocking_capacity_bytes < hierarchy.onchip_capacity_bytes

    def test_onchip_capacity_includes_all_levels(self):
        config = DatapathConfig(l2_buffer_config=L2Config.SHARED, l3_global_buffer_mib=32)
        hierarchy = MemoryHierarchy(config)
        assert hierarchy.onchip_capacity_bytes == (
            config.l1_total_bytes + config.l2_total_bytes + config.global_buffer_bytes
        )

    def test_dram_bandwidth_matches_config(self, small_config):
        hierarchy = MemoryHierarchy(small_config)
        dram = hierarchy.level(MemoryLevelName.DRAM)
        assert dram.bandwidth_bytes_per_cycle == pytest.approx(small_config.dram_bytes_per_cycle)


class TestSearchSpace:
    @pytest.fixture(scope="class")
    def space(self):
        return DatapathSearchSpace()

    def test_log10_size_is_large(self, space):
        """Table 3: the datapath space alone has ~1e13 configurations."""
        assert 12 < space.log10_size < 17

    def test_sample_produces_valid_configs(self, space):
        rng = np.random.default_rng(0)
        for _ in range(20):
            params = space.sample(rng)
            config = space.to_config(params)
            assert config.num_pes >= 1

    def test_encode_decode_roundtrip(self, space):
        rng = np.random.default_rng(1)
        for _ in range(10):
            params = space.sample(rng)
            assert space.decode(space.encode(params)) == params

    def test_encode_in_unit_cube(self, space):
        rng = np.random.default_rng(2)
        vector = space.encode(space.sample(rng))
        assert np.all(vector >= 0.0) and np.all(vector <= 1.0)

    def test_mutate_changes_at_most_requested_parameters(self, space):
        rng = np.random.default_rng(3)
        params = space.sample(rng)
        mutated = space.mutate(params, rng, num_mutations=2)
        differences = sum(1 for name in params if params[name] != mutated[name])
        assert 0 <= differences <= 2

    def test_mutate_does_not_modify_original(self, space):
        rng = np.random.default_rng(4)
        params = space.sample(rng)
        original = dict(params)
        space.mutate(params, rng, num_mutations=3)
        assert params == original

    def test_from_config_roundtrip(self, space):
        params = space.from_config(TPU_V3)
        config = space.to_config(params, num_cores=TPU_V3.num_cores)
        assert config.systolic_array_x == TPU_V3.systolic_array_x
        assert config.l3_global_buffer_mib == TPU_V3.l3_global_buffer_mib

    def test_spec_lookup(self, space):
        spec = space.spec("gddr6_channels")
        assert spec.choices == (1, 2, 4, 8)
        with pytest.raises(KeyError):
            space.spec("nonexistent")

    def test_two_pass_softmax_optional(self):
        without = DatapathSearchSpace(allow_two_pass_softmax=False)
        assert "use_two_pass_softmax" not in without.parameter_names


class TestConstraints:
    def test_tpu_baseline_sits_at_published_normalization(self):
        """Table 5: the modeled TPU-v3 is 0.5x of the TDP and 0.6x of the area budget."""
        model = AreaPowerModel()
        constraints = default_constraints(model)
        breakdown = model.evaluate(TPU_V3)
        assert constraints.normalized_tdp(breakdown.total_tdp_w) == pytest.approx(0.5, rel=0.01)
        assert constraints.normalized_area(breakdown.total_area_mm2) == pytest.approx(0.6, rel=0.01)

    def test_feasibility_check(self):
        constraints = default_constraints()
        assert constraints.is_feasible(constraints.max_area_mm2, constraints.max_tdp_w)
        assert not constraints.is_feasible(constraints.max_area_mm2 * 1.01, constraints.max_tdp_w)
        assert not constraints.is_feasible(constraints.max_area_mm2, constraints.max_tdp_w * 1.01)
