"""Deterministic fault injection and the runtime's crash/churn tolerance.

The invariant under test everywhere: injected faults (worker crashes, remote
drops, torn writes, kills between batches) may cost retries, pool restarts,
or quarantined records — but the trial history a search produces is
bit-for-bit identical to a fault-free run, and the survival is visible in
``RuntimeStats``.
"""

from __future__ import annotations

import json
import os
import signal

import numpy as np
import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.hardware.search_space import DatapathSearchSpace
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime.cache import TrialCache, problem_fingerprint
from repro.runtime.checkpoint import SearchCheckpoint
from repro.runtime.exchange import FileScoreboard, ScoreRecord
from repro.runtime.executor import ParallelExecutor, WorkerCrashError
from repro.runtime.faults import (
    KNOWN_FAULT_POINTS,
    FaultPlan,
    clear_faults,
    configure_faults,
    get_fault_plan,
    parse_fault_spec,
    set_fault_plan,
)
from repro.runtime.opcache import OpCostCache
from repro.runtime.remote import AsyncRemoteExecutor
from repro.runtime.service import EvaluationService


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _history_dicts(result):
    return [trial_metrics_to_dict(m) for m in result.history]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection off."""
    clear_faults()
    yield
    clear_faults()


@pytest.fixture(scope="module")
def reference():
    """The fault-free 12-trial history every chaos run must reproduce."""
    return FASTSearch(_problem(), optimizer="lcs", seed=0).run(num_trials=12, batch_size=4)


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------
class TestSpecParsing:
    def test_empty_spec_is_no_points(self):
        assert parse_fault_spec("") == {}
        assert parse_fault_spec("  ,  ") == {}

    def test_bare_point_defaults(self):
        points = parse_fault_spec("worker-crash")
        point = points["worker-crash"]
        assert point.probability == 1.0
        assert point.budget is None
        assert point.at is None

    def test_full_grammar(self):
        points = parse_fault_spec(
            "worker-crash:n=1,remote-drop:p=0.25:n=4,torn-write:at=0|3,"
            "service-delay:delay=0.2"
        )
        assert set(points) == {"worker-crash", "remote-drop", "torn-write", "service-delay"}
        assert points["worker-crash"].budget == 1
        assert points["remote-drop"].probability == 0.25
        assert points["remote-drop"].budget == 4
        assert points["torn-write"].at == frozenset({0, 3})
        assert points["service-delay"].delay == 0.2

    def test_at_accepts_plus_separator(self):
        # '+' survives shell quoting more easily than '|'.
        assert parse_fault_spec("torn-write:at=1+4")["torn-write"].at == frozenset({1, 4})

    def test_unknown_point_raises(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            parse_fault_spec("worker-crush")

    def test_unknown_param_raises(self):
        with pytest.raises(ValueError, match="unknown fault param"):
            parse_fault_spec("worker-crash:q=1")

    def test_bad_value_raises(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_fault_spec("remote-drop:p=often")

    def test_non_keyvalue_param_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_spec("worker-crash:1")

    def test_spec_roundtrip(self):
        for fragment in ("worker-crash:n=1", "remote-drop:p=0.25:n=4", "torn-write:at=0|3"):
            point = next(iter(parse_fault_spec(fragment).values()))
            assert parse_fault_spec(point.spec())[point.name] == point

    def test_known_points_cover_the_runtime(self):
        assert "worker-crash" in KNOWN_FAULT_POINTS
        assert "torn-write" in KNOWN_FAULT_POINTS


# ---------------------------------------------------------------------------
# Plan decision semantics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unconfigured_point_never_fires(self):
        plan = FaultPlan("worker-crash:n=1", seed=0)
        assert plan.fire("remote-drop") is None
        assert plan.total_fired == 0

    def test_budget_is_honored(self):
        plan = FaultPlan("worker-crash:n=2", seed=0)
        fired = [plan.fire("worker-crash") is not None for _ in range(10)]
        assert sum(fired) == 2
        assert fired[:2] == [True, True]  # p defaults to 1.0

    def test_pinned_indices_override_probability(self):
        plan = FaultPlan("torn-write:at=1|3", seed=0)
        fired = [plan.fire("torn-write") is not None for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_same_seed_same_pattern(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan("remote-drop:p=0.5", seed=42)
            draws.append([plan.fire("remote-drop") is not None for _ in range(50)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])  # p=0.5 actually mixes

    def test_different_seeds_differ(self):
        patterns = {
            tuple(
                FaultPlan("remote-drop:p=0.5", seed=seed).fire("remote-drop") is not None
                for _ in range(40)
            )
            for seed in range(4)
        }
        assert len(patterns) > 1

    def test_per_point_streams_are_independent(self):
        """Consuming one point's opportunities never shifts another point's."""
        solo = FaultPlan("remote-drop:p=0.5", seed=7)
        solo_pattern = [solo.fire("remote-drop") is not None for _ in range(20)]
        mixed = FaultPlan("remote-drop:p=0.5,service-error:p=0.5", seed=7)
        mixed_pattern = []
        for _ in range(20):
            mixed.fire("service-error")
            mixed_pattern.append(mixed.fire("remote-drop") is not None)
        assert mixed_pattern == solo_pattern

    def test_counters_report_per_point_and_total(self):
        plan = FaultPlan("worker-crash:n=1,torn-write:at=0", seed=0)
        plan.fire("worker-crash")
        plan.fire("torn-write")
        counters = plan.counters()
        assert counters["fault[worker-crash]"] == 1
        assert counters["fault[torn-write]"] == 1
        assert counters["faults_injected"] == 2

    def test_service_injector_protocol(self):
        plan = FaultPlan("service-error:at=1", seed=0)
        plan.at(0, ("delay", 0.5))
        assert plan(0, "/evaluate") == ("delay", 0.5)  # pinned action wins
        # Unpinned requests consume seeded opportunities: at=1 fires on the
        # point's *second* opportunity.
        assert plan(1, "/evaluate") is None
        assert plan(2, "/evaluate") == ("error",)
        assert len(plan.log) == 3

    def test_global_plan_install_and_clear(self):
        assert get_fault_plan() is None
        plan = configure_faults("worker-crash:n=1", seed=3)
        assert get_fault_plan() is plan
        assert plan.seed == 3
        configure_faults(None)
        assert get_fault_plan() is None
        set_fault_plan(plan)
        assert get_fault_plan() is plan
        clear_faults()
        assert get_fault_plan() is None

    def test_configure_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            configure_faults("nonsense-point")
        assert get_fault_plan() is None


# ---------------------------------------------------------------------------
# Worker crashes: supervised pool restart (the ISSUE's satellite #4)
# ---------------------------------------------------------------------------
class TestWorkerCrash:
    def test_sigkilled_worker_batch_matches_fault_free_history(self, reference):
        set_fault_plan(FaultPlan("worker-crash:n=1", seed=0))
        executor = ParallelExecutor(num_workers=2)
        try:
            result = FASTSearch(_problem(), optimizer="lcs", seed=0, executor=executor).run(
                num_trials=12, batch_size=4
            )
        finally:
            executor.close()
        assert result.proposals == reference.proposals
        assert _history_dicts(result) == _history_dicts(reference)
        assert result.best_score_curve == reference.best_score_curve
        assert executor.worker_restarts >= 1
        assert result.runtime.worker_restarts >= 1
        assert result.runtime.faults_injected >= 1

    def test_unbounded_crashes_exhaust_restart_budget(self):
        set_fault_plan(FaultPlan("worker-crash", seed=0))  # p=1, no budget
        executor = ParallelExecutor(num_workers=2, max_worker_restarts=1)
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        batch = [space.sample(np.random.default_rng(0))]
        try:
            with pytest.raises(WorkerCrashError):
                executor.evaluate_batch(evaluator, space, batch)
        finally:
            executor.close()
        assert executor.worker_restarts == 2  # initial + one allowed restart

    def test_no_plan_means_no_overhead_tuples_still_work(self):
        executor = ParallelExecutor(num_workers=2)
        evaluator = TrialEvaluator(_problem())
        space = DatapathSearchSpace()
        batch = [space.sample(np.random.default_rng(1)) for _ in range(3)]
        try:
            got = executor.evaluate_batch(evaluator, space, batch)
        finally:
            executor.close()
        assert len(got) == 3
        assert executor.worker_restarts == 0


# ---------------------------------------------------------------------------
# Torn writes: cache / op store / checkpoint quarantine
# ---------------------------------------------------------------------------
class TestTornWrites:
    def _cache_key(self, cache, space, fingerprint, seed):
        return cache.key_for(space.sample(np.random.default_rng(seed)), fingerprint)

    def test_injected_torn_append_is_quarantined_on_reload(self, tmp_path, reference):
        path = tmp_path / "trials.jsonl"
        space = DatapathSearchSpace()
        fingerprint = problem_fingerprint(_problem())
        cache = TrialCache(path)
        set_fault_plan(FaultPlan("torn-write:at=1", seed=0))
        for seed, metrics in enumerate(reference.history[:3]):
            cache.put(self._cache_key(cache, space, fingerprint, seed), metrics)
        clear_faults()
        reopened = TrialCache(path)
        assert reopened.stats.corrupt_records == 1
        assert reopened.stats.disk_entries_loaded == 2  # torn record skipped

    def test_manually_truncated_tail_is_quarantined(self, tmp_path, reference):
        path = tmp_path / "trials.jsonl"
        space = DatapathSearchSpace()
        fingerprint = problem_fingerprint(_problem())
        cache = TrialCache(path)
        keys = []
        for seed, metrics in enumerate(reference.history[:3]):
            key = self._cache_key(cache, space, fingerprint, seed)
            keys.append(key)
            cache.put(key, metrics)
        # Tear the final line mid-record, as a kill mid-append would.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        reopened = TrialCache(path)
        assert reopened.stats.corrupt_records == 1
        assert reopened.get(keys[0]) is not None
        assert reopened.get(keys[-1]) is None  # the torn record is gone, not wrong

    def test_compaction_drops_quarantined_lines(self, tmp_path, reference):
        path = tmp_path / "trials.jsonl"
        space = DatapathSearchSpace()
        fingerprint = problem_fingerprint(_problem())
        cache = TrialCache(path)
        for seed, metrics in enumerate(reference.history[:2]):
            cache.put(self._cache_key(cache, space, fingerprint, seed), metrics)
        with path.open("a") as handle:
            handle.write('{"key": "torn-')  # no newline, no closing quote
        compacted = TrialCache(path)
        assert compacted.stats.corrupt_records == 1
        compacted.compact()
        assert all(json.loads(line) for line in path.read_text().splitlines())
        assert TrialCache(path).stats.corrupt_records == 0

    def test_stale_cache_tmp_is_swept_on_load(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        path.write_text("")
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text("half a compaction")
        cache = TrialCache(path)
        assert not tmp.exists()
        assert cache.stats.stale_tmp_swept == 1

    def test_op_store_truncated_tail_is_quarantined(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text('{"not": "an op record"\n')  # undecodable line
        store = OpCostCache(path=path)
        assert store.stats.corrupt_records == 1

    def test_op_store_stale_tmp_is_swept(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text("")
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text("garbage")
        store = OpCostCache(path=path)
        assert not tmp.exists()
        assert store.stats.stale_tmp_swept == 1


# ---------------------------------------------------------------------------
# Checkpoint: torn saves, stale temp sweep, resume round-trips
# ---------------------------------------------------------------------------
class TestCheckpointRecovery:
    def test_torn_save_keeps_previous_checkpoint_intact(self, tmp_path, reference):
        from repro.runtime.checkpoint import CheckpointState

        path = tmp_path / "ckpt.json"
        manager = SearchCheckpoint(path, interval=1)
        state = CheckpointState(
            fingerprint="fp",
            proposals=reference.proposals[:2],
            history=reference.history[:2],
        )
        manager.save(state)
        before = path.read_text()
        set_fault_plan(FaultPlan("torn-write:at=0", seed=0))
        bigger = CheckpointState(
            fingerprint="fp",
            proposals=reference.proposals[:4],
            history=reference.history[:4],
        )
        manager.save(bigger)  # injected crash: partial tmp, no rename
        clear_faults()
        assert path.read_text() == before
        tmp = path.with_suffix(path.suffix + ".tmp")
        assert tmp.exists()  # the debris a real crash leaves
        loaded = SearchCheckpoint(path).load(DatapathSearchSpace())
        assert loaded.num_completed == 2
        assert not tmp.exists()  # swept on load

    def test_torn_save_is_retried_at_next_interval(self, tmp_path, reference):
        from repro.runtime.checkpoint import CheckpointState

        manager = SearchCheckpoint(tmp_path / "ckpt.json", interval=2)
        state = CheckpointState(
            fingerprint="fp",
            proposals=reference.proposals[:2],
            history=reference.history[:2],
        )
        set_fault_plan(FaultPlan("torn-write:at=0", seed=0))
        assert manager.maybe_save(state) is not None  # fired, but torn
        # _last_saved was not advanced, so the same state still wants saving.
        assert manager.maybe_save(state) is not None
        clear_faults()
        assert SearchCheckpoint(manager.path).load(DatapathSearchSpace()).num_completed == 2

    def test_corrupt_checkpoint_names_the_remedy(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"version": 1, "fingerpr')
        with pytest.raises(ValueError, match="delete it to restart"):
            SearchCheckpoint(path).load(DatapathSearchSpace())

    def test_resume_after_interruption_reproduces_history(self, tmp_path, reference):
        """Kill-and-resume: a run stopped at a batch boundary and resumed
        reproduces the uninterrupted trajectory bit-for-bit."""
        path = tmp_path / "ckpt.json"
        FASTSearch(
            _problem(), optimizer="lcs", seed=0, checkpoint=SearchCheckpoint(path, interval=4)
        ).run(num_trials=8, batch_size=4)
        resumed = FASTSearch(
            _problem(), optimizer="lcs", seed=0, checkpoint=SearchCheckpoint(path, interval=4)
        ).run(num_trials=12, batch_size=4, resume=True)
        assert resumed.proposals == reference.proposals
        assert _history_dicts(resumed) == _history_dicts(reference)


# ---------------------------------------------------------------------------
# Exchange scoreboard: crashed-publisher debris
# ---------------------------------------------------------------------------
class TestExchangeSweep:
    def test_dead_writer_tmp_is_swept_on_poll(self, tmp_path):
        board = FileScoreboard(tmp_path / "scores.json")
        board.publish(ScoreRecord(shard_id=0, objective=-1.0, score=1.0))
        # Debris from a crashed publisher: pid 2**22+5 cannot be alive
        # (beyond the default pid_max), parse failure counts as dead too.
        dead = tmp_path / ".scores.json.shard-1.tmp-4194309"
        dead.write_text("partial")
        weird = tmp_path / ".scores.json.shard-2.tmp-notapid"
        weird.write_text("partial")
        scores = board.poll()
        assert set(scores) == {0}
        assert not dead.exists() and not weird.exists()
        assert board.stale_tmp_swept == 2

    def test_live_writer_tmp_is_left_alone(self, tmp_path):
        board = FileScoreboard(tmp_path / "scores.json")
        live = tmp_path / f".scores.json.shard-1.tmp-{os.getpid()}"
        live.write_text("in flight")
        board.poll()
        assert live.exists()
        assert board.stale_tmp_swept == 0


# ---------------------------------------------------------------------------
# Remote faults: injected drops/timeouts ride the retry machinery
# ---------------------------------------------------------------------------
class TestRemoteInjection:
    def test_injected_drops_are_retried_history_identical(self, reference):
        set_fault_plan(FaultPlan("remote-drop:n=2", seed=0))
        with EvaluationService() as service:
            executor = AsyncRemoteExecutor(
                [service.url], timeout=30.0, max_retries=3, backoff=0.01
            )
            try:
                result = FASTSearch(
                    _problem(), optimizer="lcs", seed=0, executor=executor
                ).run(num_trials=12, batch_size=4)
            finally:
                executor.close()
        assert _history_dicts(result) == _history_dicts(reference)
        assert result.runtime.remote_retries >= 2
        assert result.runtime.remote_fallbacks == 0
        assert result.runtime.faults_injected == 2

    def test_injected_timeouts_count_as_timeouts(self):
        set_fault_plan(FaultPlan("remote-timeout:at=0", seed=0))
        with EvaluationService() as service:
            executor = AsyncRemoteExecutor(
                [service.url], timeout=30.0, max_retries=3, backoff=0.01
            )
            evaluator = TrialEvaluator(_problem())
            space = DatapathSearchSpace()
            batch = [space.sample(np.random.default_rng(0))]
            try:
                executor.evaluate_batch(evaluator, space, batch)
                counters = executor.runtime_counters()
            finally:
                executor.close()
        assert counters["remote_retries"] >= 1
        assert counters["endpoint_stats"][service.url]["timeouts"] >= 1


# ---------------------------------------------------------------------------
# End to end: one run surviving several fault classes at once
# ---------------------------------------------------------------------------
class TestChaosEndToEnd:
    def test_mixed_faults_history_bit_for_bit(self, tmp_path, reference):
        configure_faults("worker-crash:n=1,torn-write:n=1", seed=7)
        cache = TrialCache(tmp_path / "trials.jsonl")
        executor = ParallelExecutor(num_workers=2)
        try:
            result = FASTSearch(
                _problem(), optimizer="lcs", seed=0, executor=executor, cache=cache
            ).run(num_trials=12, batch_size=4)
        finally:
            executor.close()
            clear_faults()
        assert result.proposals == reference.proposals
        assert _history_dicts(result) == _history_dicts(reference)
        assert result.runtime.worker_restarts >= 1
        assert result.runtime.faults_injected >= 2
        # The torn record is invisible now but quarantined on the next open.
        assert TrialCache(tmp_path / "trials.jsonl").stats.corrupt_records == 1
