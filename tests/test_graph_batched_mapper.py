"""Tests for the graph-batched mapping engine and the region-result cache.

The contract under test is *bit-for-bit equivalence* across the whole
ladder: the scalar reference loop, the per-op vectorized engine, the
graph-batched engine (one stacked candidate sweep per trial), and any
region-cache or warm-worker configuration must all produce identical op
costs, identical simulation results, and identical search histories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.core.trial import TrialEvaluator
from repro.hardware.datapath import BufferConfig, DatapathConfig
from repro.hardware.search_space import DatapathSearchSpace
from repro.mapping.loopnest import MatrixProblem, extract_problem
from repro.mapping.mapper import Mapper, MapperOptions
from repro.mapping.tiling import (
    estimate_traffic_batch,
    estimate_traffic_batch_ops,
    tiling_candidate_arrays,
    tiling_candidate_arrays_ops,
)
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime import ParallelExecutor, run_sharded_sweep
from repro.runtime.opcache import (
    OpCostCache,
    RegionCostCache,
    get_region_cache,
    reset_op_caches,
    reset_region_caches,
)
from repro.simulator.engine import SimulationOptions, Simulator
from repro.workloads.ops import is_matrix_op
from repro.workloads.registry import available_workloads, build_workload


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_op_caches()
    yield
    reset_op_caches()


def _random_configs(count: int, seed: int = 11):
    space = DatapathSearchSpace()
    rng = np.random.default_rng(seed)
    configs = []
    while len(configs) < count:
        params = {
            spec.name: spec.choices[int(rng.integers(len(spec.choices)))]
            for spec in space.specs
        }
        try:
            configs.append(space.to_config(params))
        except Exception:
            continue
    return configs


def _matrix_ops(graph):
    return [op for op in graph.ops if is_matrix_op(op.op_type)]


def _problems():
    return [
        MatrixProblem(
            m=4096, n=512, k=512, instances=1, stationary_is_weight=True,
            is_depthwise=False, input_bytes=4096 * 512 * 2,
            stationary_bytes=512 * 512 * 2, output_bytes=4096 * 512 * 2,
        ),
        MatrixProblem(
            m=1024, n=96, k=9, instances=1, stationary_is_weight=True,
            is_depthwise=True, input_bytes=1024 * 9 * 2,
            stationary_bytes=9 * 96 * 2, output_bytes=1024 * 96 * 2,
        ),
        MatrixProblem(
            m=128, n=128, k=64, instances=16, stationary_is_weight=False,
            is_depthwise=False, input_bytes=16 * 128 * 64 * 2,
            stationary_bytes=16 * 64 * 128 * 2, output_bytes=16 * 128 * 128 * 2,
        ),
        MatrixProblem(
            m=50000, n=4096, k=4096, instances=1, stationary_is_weight=True,
            is_depthwise=False, input_bytes=50000 * 4096 * 2,
            stationary_bytes=4096 * 4096 * 2, output_bytes=50000 * 4096 * 2,
        ),
    ]


# ---------------------------------------------------------------------------
class TestOpAxisTiling:
    def test_candidate_arrays_ops_match_per_problem_grids(self):
        problems = _problems()
        op_index, m_all, n_all, k_all = tiling_candidate_arrays_ops(problems, 128, 128)
        offset = 0
        for position, problem in enumerate(problems):
            m, n, k = tiling_candidate_arrays(problem, 128, 128)
            count = m.shape[0]
            segment = slice(offset, offset + count)
            assert np.array_equal(op_index[segment], np.full(count, position))
            assert np.array_equal(m_all[segment], m)
            assert np.array_equal(n_all[segment], n)
            assert np.array_equal(k_all[segment], k)
            offset += count
        assert offset == op_index.shape[0]

    def test_candidate_arrays_ops_empty(self):
        op_index, m, n, k = tiling_candidate_arrays_ops([], 128, 128)
        assert op_index.shape == m.shape == n.shape == k.shape == (0,)

    @pytest.mark.parametrize("blocking", [1 << 20, 16 << 20, 256 << 20])
    def test_traffic_batch_ops_bitwise_equals_per_problem(self, blocking):
        problems = _problems()
        op_index, m_all, n_all, k_all = tiling_candidate_arrays_ops(problems, 128, 128)
        stacked = estimate_traffic_batch_ops(
            problems, op_index, m_all, n_all, k_all, blocking
        )
        offset = 0
        for problem in problems:
            m, n, k = tiling_candidate_arrays(problem, 128, 128)
            single = estimate_traffic_batch(problem, m, n, k, blocking)
            segment = slice(offset, offset + m.shape[0])
            for name in ("input_bytes", "stationary_bytes", "output_bytes",
                         "total_bytes", "buffer_bytes", "fits"):
                assert np.array_equal(
                    getattr(stacked, name)[segment], getattr(single, name)
                ), name
            offset += m.shape[0]


# ---------------------------------------------------------------------------
class TestMapOpsBatch:
    def test_batch_equals_per_op_across_random_configs(self, efficientnet_b0):
        ops = _matrix_ops(efficientnet_b0)
        for config in _random_configs(3):
            batch_mapper = Mapper(config)
            batched = batch_mapper.map_ops_batch(ops, efficientnet_b0.tensors)
            per_op_mapper = Mapper(config)
            for op in ops:
                assert batched[op.name] == per_op_mapper.map_op(
                    op, efficientnet_b0.tensors
                ), op.name

    def test_batch_equals_scalar_reference(self, bert_seq128):
        ops = _matrix_ops(bert_seq128)
        config = DatapathConfig()
        batched = Mapper(config).map_ops_batch(ops, bert_seq128.tensors)
        scalar = Mapper(config, options=MapperOptions(vectorize=False))
        for op in ops:
            assert batched[op.name] == scalar.map_op(op, bert_seq128.tensors)

    def test_batch_labels_each_op_and_dedupes_problems(self, resnet50):
        ops = _matrix_ops(resnet50)
        config = DatapathConfig()
        mapper = Mapper(config)
        costs = mapper.map_ops_batch(ops, resnet50.tensors)
        assert set(costs) == {op.name for op in ops}
        for op in ops:
            assert costs[op.name].op_name == op.name
        # ResNet repeats block shapes: the per-trial memo must be smaller
        # than the op list (shared problems computed once).
        assert len(mapper._cache) < len(ops)

    def test_unschedulable_config_fails_every_op(self, efficientnet_b0):
        ops = _matrix_ops(efficientnet_b0)
        # A 256x256 array needs 32 KiB of private weight scratchpad to stage
        # a stationary tile; 1 KiB fails the structural check (Eq. 5).
        config = DatapathConfig(
            systolic_array_x=256,
            systolic_array_y=256,
            l1_buffer_config=BufferConfig.PRIVATE,
            l1_weight_buffer_kib=1,
        )
        costs = Mapper(config).map_ops_batch(ops, efficientnet_b0.tensors)
        assert all(cost.schedule_failed for cost in costs.values())

    def test_batch_populates_shared_op_cache(self, efficientnet_b0):
        ops = _matrix_ops(efficientnet_b0)
        config = DatapathConfig()
        shared = OpCostCache()
        first = Mapper(config, op_cache=shared)
        batched = first.map_ops_batch(ops, efficientnet_b0.tensors)
        assert shared.stats.puts > 0
        second = Mapper(config, op_cache=shared)
        hits_before = shared.stats.hits
        rebatched = second.map_ops_batch(ops, efficientnet_b0.tensors)
        assert shared.stats.hits > hits_before
        assert rebatched == batched

    def test_empty_batch(self, efficientnet_b0):
        assert Mapper(DatapathConfig()).map_ops_batch([], efficientnet_b0.tensors) == {}

    def test_batch_rejects_vector_ops(self, efficientnet_b0):
        vector_ops = [op for op in efficientnet_b0.ops if not is_matrix_op(op.op_type)]
        with pytest.raises(ValueError):
            Mapper(DatapathConfig()).map_ops_batch(
                vector_ops[:1], efficientnet_b0.tensors
            )


# ---------------------------------------------------------------------------
def _simulate(graph, config, **options):
    simulator = Simulator(
        config,
        SimulationOptions(fusion_solver="greedy", **options),
    )
    return simulator.simulate(graph)


def _result_signature(result):
    return (
        result.schedule_failed,
        [
            (
                record.index,
                record.compute_cycles,
                record.vector_cycles,
                record.dram_input_bytes,
                record.dram_weight_bytes,
                record.dram_output_bytes,
                record.pre_fusion_cycles,
                record.post_fusion_cycles,
                record.matrix_utilization,
                record.fusion,
                record.op_busy_cycles,
            )
            for record in result.regions
        ],
        result.qps if not result.schedule_failed else None,
    )


class TestGraphBatchedSimulator:
    @pytest.mark.parametrize("workload", sorted(available_workloads()))
    def test_all_engines_identical_per_workload(self, workload):
        graph = build_workload(workload, batch_size=1)
        config = DatapathConfig()
        scalar = _simulate(
            graph, config, vectorized_mapper=False, region_cache_enabled=False
        )
        per_op = _simulate(
            graph, config, graph_batched_mapper=False, region_cache_enabled=False
        )
        batched = _simulate(graph, config, region_cache_enabled=False)
        assert _result_signature(per_op) == _result_signature(scalar)
        assert _result_signature(batched) == _result_signature(scalar)

    def test_random_datapaths_identical(self, efficientnet_b0):
        for config in _random_configs(4, seed=23):
            per_op = _simulate(
                efficientnet_b0, config,
                graph_batched_mapper=False, region_cache_enabled=False,
            )
            batched = _simulate(efficientnet_b0, config, region_cache_enabled=False)
            assert _result_signature(batched) == _result_signature(per_op)

    def test_region_cache_on_off_identical(self, efficientnet_b0):
        config = DatapathConfig()
        without = _simulate(efficientnet_b0, config, region_cache_enabled=False)
        cold = _simulate(efficientnet_b0, config)
        warm = _simulate(efficientnet_b0, config)
        assert _result_signature(cold) == _result_signature(without)
        assert _result_signature(warm) == _result_signature(without)
        cache = get_region_cache()
        assert cache.stats.hits > 0

    def test_warm_trial_skips_the_mapper_entirely(self, efficientnet_b0):
        config = DatapathConfig()
        _simulate(efficientnet_b0, config)
        warm_simulator = Simulator(config, SimulationOptions(fusion_solver="greedy"))
        warm_simulator.simulate(efficientnet_b0)
        # All regions came from the cache: the mapper never ran.
        assert warm_simulator.stage_seconds["mapper"] == 0.0
        assert len(warm_simulator.mapper._cache) == 0


# ---------------------------------------------------------------------------
class TestRegionCostCache:
    def test_lru_eviction_and_counters(self):
        cache = RegionCostCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1  # refresh "a"; "b" becomes LRU
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.get(("b",)) is None  # evicted
        assert cache.get(("c",)) == 3
        assert cache.stats.puts == 3
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_snapshot_counters(self):
        cache = RegionCostCache()
        cache.put(("x",), 1)
        cache.get(("x",))
        cache.get(("y",))
        assert cache.snapshot_counters() == (1, 1)

    def test_registry_is_shared_and_resettable(self):
        first = get_region_cache()
        assert get_region_cache() is first
        reset_region_caches()
        assert get_region_cache() is not first
        # reset_op_caches clears the region registry too.
        second = get_region_cache()
        reset_op_caches()
        assert get_region_cache() is not second

    def test_search_runtime_stats_surface_region_counters(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)

        def run():
            evaluator = TrialEvaluator(
                problem,
                simulation_options=SimulationOptions(fusion_solver="greedy"),
            )
            search = FASTSearch(problem, optimizer="lcs", seed=5, evaluator=evaluator)
            return search.run(num_trials=8, batch_size=4)

        cold = run()
        warm = run()
        assert cold.runtime.region_cache_misses > 0
        assert cold.runtime.region_cache_hits == 0
        assert warm.runtime.region_cache_hits > 0
        assert warm.runtime.region_cache_hit_rate == 1.0
        history = lambda r: [trial_metrics_to_dict(m) for m in r.history]  # noqa: E731
        assert history(warm) == history(cold)


# ---------------------------------------------------------------------------
class TestWarmWorkers:
    def _run(self, executor=None, op_cache_path=None, trials=8):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        evaluator = TrialEvaluator(
            problem,
            simulation_options=SimulationOptions(
                fusion_solver="greedy",
                op_cache_path=str(op_cache_path) if op_cache_path else None,
            ),
        )
        search = FASTSearch(
            problem, optimizer="lcs", seed=1, evaluator=evaluator, executor=executor
        )
        return search.run(num_trials=trials, batch_size=4)

    def test_warm_caches_is_safe_and_idempotent(self):
        problem = SearchProblem(["mobilenet-v2"], ObjectiveKind.PERF_PER_TDP)
        evaluator = TrialEvaluator(
            problem, simulation_options=SimulationOptions(fusion_solver="greedy")
        )
        evaluator.warm_caches()
        evaluator.warm_caches(batch_sizes=(1, 2))

    def test_parallel_run_reports_worker_op_cache_hits(self, tmp_path):
        store = tmp_path / "ops.jsonl"
        serial = self._run(op_cache_path=store)  # populates the store
        assert store.exists()
        reset_op_caches()
        with ParallelExecutor(num_workers=2) as executor:
            parallel = self._run(executor=executor, op_cache_path=store)
            counters = executor.runtime_counters()
        # The satellite fix: parallel modes used to report op_cache_hits: 0
        # even with a warm persistent store on disk.
        assert parallel.runtime.op_cache_hits > 0
        assert counters["op_cache_hits"] == parallel.runtime.op_cache_hits
        assert parallel.runtime.eval_seconds > 0
        history = lambda r: [trial_metrics_to_dict(m) for m in r.history]  # noqa: E731
        assert history(parallel) == history(serial)


# ---------------------------------------------------------------------------
class TestSweepOpCacheSharing:
    def test_sweep_shares_op_store_across_shards(self, tmp_path):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        store = tmp_path / "sweep-ops.jsonl"
        with_store = run_sharded_sweep(
            problem, total_trials=8, num_shards=2, optimizer="random", seed=9,
            op_cache_path=store,
        )
        assert store.exists()
        reset_op_caches()
        without = run_sharded_sweep(
            problem, total_trials=8, num_shards=2, optimizer="random", seed=9,
            op_cache_enabled=False,
        )
        assert [trial_metrics_to_dict(t.metrics) for t in with_store.trials] == [
            trial_metrics_to_dict(t.metrics) for t in without.trials
        ]
        # A second sweep over the warm store starts from disk hits.
        reset_op_caches()
        rerun = run_sharded_sweep(
            problem, total_trials=8, num_shards=2, optimizer="random", seed=9,
            op_cache_path=store,
        )
        assert rerun.runtime.op_cache_hits > 0
