"""End-to-end tracing + metrics telemetry layer.

Covers the span tracer (nesting, timing monotonicity, sampling determinism,
ring-buffer bounds, ingest dedup), the trace file formats (Chrome trace_event
schema, JSONL round trip), the Prometheus text exposition (golden output,
label escaping), and the cross-process plumbing: worker spans merged into the
parent trace exactly once, trace context propagated from a remote search into
the evaluation service, and the hard invariant that tracing never changes a
search's trial history.
"""

from __future__ import annotations

import io
import json
import time
import urllib.request

import pytest

from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem
from repro.reporting.serialization import trial_metrics_to_dict
from repro.runtime import telemetry
from repro.runtime.executor import ParallelExecutor
from repro.runtime.profiling import summarize_trace
from repro.runtime.progress import TRIAL_FINISHED, ProgressBus, ProgressPrinter
from repro.runtime.remote import AsyncRemoteExecutor
from repro.runtime.service import EvaluationService
from repro.runtime.telemetry import (
    NULL_SPAN,
    MetricsRegistry,
    SpanRecord,
    Tracer,
    apply_telemetry_config,
    configure_tracer,
    get_tracer,
    load_trace,
    set_tracer,
    telemetry_config,
    write_chrome_trace,
    write_jsonl_trace,
)


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Restore the global tracer and metrics registry after every test."""
    saved = telemetry.get_tracer()
    yield
    telemetry.set_tracer(saved)
    telemetry.reset_metrics()


def _problem():
    return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)


def _run_search(executor=None, trials=8, batch_size=4):
    search = FASTSearch(_problem(), optimizer="lcs", seed=0, executor=executor)
    return search.run(num_trials=trials, batch_size=batch_size)


def _history(result):
    return [trial_metrics_to_dict(m) for m in result.history]


# ---------------------------------------------------------------------------
# Tracer core
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_timing_monotonicity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent", category="t") as parent:
            time.sleep(0.002)
            with tracer.span("child") as child:
                time.sleep(0.002)
            assert tracer.current_span() is parent
        assert tracer.current_span() is None
        records = {r.name: r for r in tracer.snapshot()}
        p, c = records["parent"], records["child"]
        assert c.parent_id == p.span_id
        assert c.trace_id == p.trace_id
        assert p.parent_id is None
        assert 0 < c.duration < p.duration
        # Child starts after the parent and ends before the parent's end
        # (wall starts + perf-counter durations: allow clock-mixing slop).
        assert c.start_unix >= p.start_unix - 5e-3
        assert c.start_unix + c.duration <= p.start_unix + p.duration + 5e-3

    def test_span_ids_unique_and_attrs(self):
        tracer = Tracer(enabled=True)
        for i in range(50):
            with tracer.span("s", index=i) as span:
                span.set_attr("extra", i * 2)
        records = tracer.snapshot()
        assert len({r.span_id for r in records}) == 50
        assert records[7].attrs == {"index": 7, "extra": 14}

    def test_sampling_deterministic_and_children_inherit(self):
        def run(seed):
            tracer = Tracer(enabled=True, sample_rate=0.5, seed=seed)
            for i in range(20):
                with tracer.span(f"root{i}"):
                    with tracer.span("inner"):
                        pass
            return [r.name for r in tracer.snapshot()]

        names = run(7)
        assert names == run(7)  # same seed -> identical sampling decisions
        assert any(run(seed) != names for seed in (1, 2, 3))
        roots = [n for n in names if n.startswith("root")]
        assert 0 < len(roots) < 20  # rate 0.5 keeps a strict subset
        # A sampled root records its whole subtree; a dropped root drops it.
        assert names.count("inner") == len(roots)

    def test_ring_buffer_bounds_and_drop_counter(self):
        tracer = Tracer(enabled=True, capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        kept = tracer.snapshot()
        assert len(kept) == 4
        assert [r.name for r in kept] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped == 6
        assert tracer.total_recorded == 10

    def test_ingest_dedup_is_exactly_once(self):
        source = Tracer(enabled=True)
        with source.span("a"):
            pass
        payload = [r.to_dict() for r in source.drain()]
        sink = Tracer(enabled=True)
        assert sink.ingest(payload) == 1
        assert sink.ingest(payload) == 0  # hedged/retried redelivery
        assert len(sink.snapshot()) == 1

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span("x", foo=1)
        assert handle is NULL_SPAN
        with handle as span:
            span.set_attr("y", 2)  # chainable no-op
        assert tracer.snapshot() == []
        assert tracer.context_header() is None

    def test_worker_config_roundtrip(self):
        configure_tracer(enabled=True, sample_rate=0.5, seed=3, capacity=128)
        config = telemetry_config()
        assert config is not None and config["sample_rate"] == 0.5
        fresh = apply_telemetry_config(config)
        assert fresh is get_tracer()
        assert fresh.enabled
        # Same trace id (worker spans join the parent trace), fresh buffer.
        assert fresh.config()["trace_id"] == config["trace_id"]
        assert fresh.snapshot() == []
        assert not apply_telemetry_config(None).enabled
        assert telemetry_config() is None

    def test_record_span_for_synthesized_roots(self):
        tracer = Tracer(enabled=True)
        record = tracer.record_span(
            "search", start_unix=100.0, duration=2.5, category="search", n=4
        )
        assert record is not None and record.attrs == {"n": 4}
        assert tracer.snapshot()[-1].name == "search"
        assert Tracer(enabled=False).record_span("x", 0.0, 1.0) is None


# ---------------------------------------------------------------------------
# Trace files
# ---------------------------------------------------------------------------
class TestTraceFiles:
    def _traced(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", category="x", foo="bar"):
            with tracer.span("inner"):
                pass
        return tracer.snapshot()

    def test_chrome_trace_schema(self, tmp_path):
        records = self._traced()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(records, str(path)) == 2
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == 2
        assert metas and all(m["name"] == "process_name" for m in metas)
        for event in spans:
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert event["dur"] >= 0
            assert {"pid", "tid", "name", "cat", "args"} <= set(event)
        args_by_name = {e["name"]: e["args"] for e in spans}
        assert args_by_name["outer"]["foo"] == "bar"
        assert (
            args_by_name["inner"]["parent_id"]
            == args_by_name["outer"]["span_id"]
        )

    def test_chrome_trace_load_roundtrip(self, tmp_path):
        records = self._traced()
        path = tmp_path / "trace.json"
        write_chrome_trace(records, str(path))
        loaded = load_trace(str(path))
        assert [r.name for r in loaded] == [r.name for r in records]
        assert [r.span_id for r in loaded] == [r.span_id for r in records]
        assert [r.parent_id for r in loaded] == [r.parent_id for r in records]
        for got, want in zip(loaded, records):
            assert got.duration == pytest.approx(want.duration, abs=1e-6)

    def test_jsonl_roundtrip_exact(self, tmp_path):
        records = self._traced()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl_trace(records, str(path)) == 2
        loaded = load_trace(str(path))
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in records]

    def test_single_line_jsonl_is_not_mistaken_for_chrome(self, tmp_path):
        records = self._traced()[:1]
        path = tmp_path / "one.jsonl"
        write_jsonl_trace(records, str(path))
        loaded = load_trace(str(path))
        assert len(loaded) == 1 and loaded[0].name == records[0].name

    def test_empty_file_loads_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert load_trace(str(path)) == []


# ---------------------------------------------------------------------------
# Trace summary (repro trace)
# ---------------------------------------------------------------------------
class TestSummarizeTrace:
    def _span(self, name, span_id, parent_id=None, duration=1.0, category="app"):
        return SpanRecord(
            name=name,
            trace_id="t",
            span_id=span_id,
            parent_id=parent_id,
            start_unix=0.0,
            duration=duration,
            category=category,
        )

    def test_stage_aggregation_coverage_and_topk(self):
        records = [
            self._span("trial", "t1", duration=1.0, category="search"),
            self._span("simulate", "s1", parent_id="t1", duration=0.6),
            self._span("area_power", "a1", parent_id="t1", duration=0.35),
            self._span("trial", "t2", duration=1.0, category="search"),
            self._span("simulate", "s2", parent_id="t2", duration=0.9),
            self._span("ask_batch", "b1", duration=0.2),  # not a trial child
        ]
        summary = summarize_trace(records, top_k=2)
        assert summary.num_spans == 6
        assert summary.num_trials == 2
        assert summary.trial_seconds == pytest.approx(2.0)
        assert summary.coverage == pytest.approx((0.6 + 0.35 + 0.9) / 2.0)
        by_name = {s.name: s for s in summary.stages}
        assert by_name["simulate"].count == 2
        assert by_name["simulate"].total_seconds == pytest.approx(1.5)
        assert by_name["simulate"].mean_seconds == pytest.approx(0.75)
        assert summary.stages[0].name == "trial"  # sorted by total time
        assert [s.name for s in summary.slowest] == ["trial", "trial"]
        assert summary.to_dict()["num_trials"] == 2

    def test_no_trials_means_zero_coverage(self):
        summary = summarize_trace([self._span("x", "1")])
        assert summary.num_trials == 0 and summary.coverage == 0.0


# ---------------------------------------------------------------------------
# Prometheus metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_exposition_golden(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Total requests.", labelnames=("route", "status")
        )
        requests.inc(route="/evaluate", status="200")
        requests.inc(2, route="/health", status="200")
        registry.gauge("repro_uptime_seconds", "Uptime.").set(12.5)
        latency = registry.histogram(
            "repro_latency_seconds",
            "Latency.",
            labelnames=("route",),
            buckets=(1.0, 5.0),
        )
        latency.observe(0.5, route="/evaluate")
        latency.observe(2.0, route="/evaluate")
        assert registry.expose() == (
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{route="/evaluate",le="1"} 1\n'
            'repro_latency_seconds_bucket{route="/evaluate",le="5"} 2\n'
            'repro_latency_seconds_bucket{route="/evaluate",le="+Inf"} 2\n'
            'repro_latency_seconds_sum{route="/evaluate"} 2.5\n'
            'repro_latency_seconds_count{route="/evaluate"} 2\n'
            "# HELP repro_requests_total Total requests.\n"
            "# TYPE repro_requests_total counter\n"
            'repro_requests_total{route="/evaluate",status="200"} 1\n'
            'repro_requests_total{route="/health",status="200"} 2\n'
            "# HELP repro_uptime_seconds Uptime.\n"
            "# TYPE repro_uptime_seconds gauge\n"
            "repro_uptime_seconds 12.5\n"
        )

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("v",))
        counter.inc(v='a"b\\c\nd')
        assert 'c_total{v="a\\"b\\\\c\\nd"} 1' in registry.expose()

    def test_counters_are_monotonic_and_labels_checked(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("route",))
        with pytest.raises(ValueError):
            counter.inc(-1, route="/x")
        with pytest.raises(ValueError):
            counter.inc(bogus="label")
        with pytest.raises(ValueError):  # kind mismatch on re-registration
            registry.gauge("c_total", labelnames=("route",))
        assert registry.counter("c_total", labelnames=("route",)) is counter


# ---------------------------------------------------------------------------
# Search integration: determinism, worker merge, remote propagation
# ---------------------------------------------------------------------------
class TestSearchIntegration:
    def test_tracing_never_changes_the_history(self):
        baseline = _history(_run_search())
        configure_tracer(enabled=True, seed=0)
        traced = _run_search()
        assert _history(traced) == baseline
        assert traced.runtime.spans_recorded > 0
        # Sampling must not perturb results either (it uses a private RNG).
        configure_tracer(enabled=True, sample_rate=0.25, seed=9)
        assert _history(_run_search()) == baseline

    def test_trial_spans_cover_the_trial_wall_time(self):
        from repro.runtime.opcache import reset_op_caches, reset_region_caches

        # Cold caches: trials actually run the simulator stages, so the
        # measurement reflects a real (first-run) trial time profile.
        reset_op_caches()
        reset_region_caches()
        configure_tracer(enabled=True)
        _run_search()
        records = get_tracer().snapshot()
        summary = summarize_trace(records)
        assert summary.num_trials == 8
        # Feasible trials are where the time goes; their stage spans must
        # explain nearly all of it.  (Infeasible constraint-check trials are
        # microseconds of mostly constraint logic with no simulator stages,
        # so whole-trace coverage on a warm in-process run sits lower.)
        feasible_ids = {
            r.span_id
            for r in records
            if r.name == "trial" and r.attrs.get("feasible")
        }
        assert feasible_ids
        feasible_seconds = sum(
            r.duration for r in records if r.span_id in feasible_ids
        )
        child_seconds = sum(
            r.duration for r in records if r.parent_id in feasible_ids
        )
        assert child_seconds >= 0.9 * feasible_seconds
        assert summary.coverage > 0.5

    def test_parallel_worker_spans_merge_exactly_once(self):
        configure_tracer(enabled=True)
        executor = ParallelExecutor(num_workers=2)
        try:
            result = _run_search(executor=executor)
        finally:
            executor.close()
        records = get_tracer().snapshot()
        trials = [r for r in records if r.name == "trial"]
        assert len(trials) == 8
        assert len({r.span_id for r in trials}) == 8  # no duplicate delivery
        assert {r.trace_id for r in records} == {get_tracer().config()["trace_id"]}
        import os

        assert any(r.pid != os.getpid() for r in trials)  # really from workers
        assert result.runtime.spans_recorded == len(records)

    def test_remote_trace_propagates_into_the_service(self):
        configure_tracer(enabled=True)
        with EvaluationService() as service:
            executor = AsyncRemoteExecutor(
                [service.url], timeout=30.0, max_retries=2, backoff=0.01,
                hedge_after=None,
            )
            try:
                _run_search(executor=executor)
            finally:
                executor.close()
        records = get_tracer().snapshot()
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)
        requests = by_name.get("remote_request", [])
        served = by_name.get("serve_request", [])
        assert requests and served
        request_ids = {r.span_id for r in requests}
        batch_ids = {r.span_id for r in by_name.get("evaluate_batch", [])}
        # Server-side spans hang off the client's request spans, which hang
        # off the search's evaluate_batch spans: one connected trace.
        assert all(r.parent_id in request_ids for r in served)
        assert all(r.parent_id in batch_ids for r in requests)
        assert all(r.attrs.get("status") == "ok" for r in requests)

    def test_service_health_and_metrics_routes(self):
        with EvaluationService() as service:
            # Request counters are observed after the reply is written, so
            # the second /health response sees the first one counted.
            urllib.request.urlopen(f"{service.url}/health", timeout=10).read()
            with urllib.request.urlopen(f"{service.url}/health", timeout=10) as reply:
                health = json.loads(reply.read())
            with urllib.request.urlopen(f"{service.url}/metrics", timeout=10) as reply:
                assert reply.headers["Content-Type"].startswith("text/plain")
                exposition = reply.read().decode()
        assert health["uptime_seconds"] > 0
        assert health["requests_by_route"].get("/health") == 1
        assert "# TYPE repro_service_requests_total counter" in exposition
        assert "repro_service_uptime_seconds" in exposition
        # Every sample line must parse as `name{labels} value`.
        for line in exposition.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part and float(value) == float(value)


# ---------------------------------------------------------------------------
# Progress lines (cache hit rates) and the CLI surface
# ---------------------------------------------------------------------------
def test_progress_lines_show_cache_hit_rates():
    stream = io.StringIO()
    bus = ProgressBus()
    bus.subscribe(ProgressPrinter(stream=stream))
    bus.emit(
        TRIAL_FINISHED, trial_index=0, score=1.0, best_score=1.0, feasible=True,
        op_cache_hit_rate=0.5, region_cache_hit_rate=0.25,
    )
    bus.emit(TRIAL_FINISHED, trial_index=1, score=1.0, best_score=1.0, feasible=True)
    lines = stream.getvalue().splitlines()
    assert "oc=50%" in lines[0] and "rc=25%" in lines[0]
    assert "oc=" not in lines[1]  # omitted when the rates are unknown


def test_cli_traced_search_and_trace_summary(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "search.json"
    assert main([
        "search", "--workload", "efficientnet-b0", "--trials", "4",
        "--batch-size", "4", "--trace", str(trace_path),
    ]) == 0
    assert trace_path.exists()
    assert main(["trace", str(trace_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "trial time covered by stage spans" in out
    assert "Slowest spans" in out
