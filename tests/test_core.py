"""Tests for the core package: problem, trial evaluation, designs, FAST search."""

import math

import pytest

from repro.core.designs import FAST_LARGE, FAST_SMALL, NAMED_DESIGNS, TPU_V3
from repro.core.fast import FASTSearch
from repro.core.problem import ObjectiveKind, SearchProblem, geometric_mean
from repro.core.trial import TrialEvaluator
from repro.hardware.search_space import DatapathSearchSpace
from repro.hardware.tpu import EvaluationConstraints


class TestProblem:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0

    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            SearchProblem([])

    def test_default_constraints_created(self):
        problem = SearchProblem(["efficientnet-b0"])
        assert problem.constraints is not None
        assert problem.constraints.max_tdp_w > 0

    def test_multi_workload_flag(self):
        assert SearchProblem(["efficientnet-b0", "resnet50"]).is_multi_workload
        assert not SearchProblem(["resnet50"]).is_multi_workload

    def test_objective_kinds(self):
        assert ObjectiveKind.PERF_PER_TDP.higher_is_better
        assert not ObjectiveKind.LATENCY.higher_is_better

    def test_workload_score_perf_per_tdp(self):
        problem = SearchProblem(["resnet50"], ObjectiveKind.PERF_PER_TDP)
        assert problem.workload_score("resnet50", qps=100.0, tdp_w=50.0, area_mm2=100.0) == 2.0

    def test_workload_score_uses_baseline(self):
        problem = SearchProblem(
            ["resnet50"], ObjectiveKind.THROUGHPUT, baseline_qps={"resnet50": 50.0}
        )
        assert problem.workload_score("resnet50", qps=100.0, tdp_w=1.0, area_mm2=1.0) == 2.0

    def test_minimized_value_sign(self):
        problem = SearchProblem(["resnet50"])
        assert problem.minimized_value(10.0) == -10.0
        assert math.isinf(problem.minimized_value(0.0))

    def test_aggregate_is_geomean(self):
        problem = SearchProblem(["a", "b"]) if False else SearchProblem(["resnet50", "efficientnet-b0"])
        value = problem.aggregate({"resnet50": 2.0, "efficientnet-b0": 8.0})
        assert value == pytest.approx(4.0)


class TestNamedDesigns:
    def test_named_designs_registered(self):
        assert set(NAMED_DESIGNS) == {"tpu-v3", "fast-large", "fast-small"}

    def test_fast_large_matches_table5(self):
        assert FAST_LARGE.num_pes == 64
        assert FAST_LARGE.systolic_array_x == 32 and FAST_LARGE.systolic_array_y == 32
        assert FAST_LARGE.l3_global_buffer_mib == 128
        assert FAST_LARGE.native_batch_size == 8
        assert FAST_LARGE.dram_bandwidth_bytes_per_s == pytest.approx(448e9)
        assert FAST_LARGE.peak_matrix_flops / 1e12 == pytest.approx(123, rel=0.1)

    def test_fast_small_matches_table5(self):
        assert FAST_SMALL.num_pes == 8
        assert FAST_SMALL.systolic_array_x == 64 and FAST_SMALL.systolic_array_y == 32
        assert FAST_SMALL.l3_global_buffer_mib == 8
        assert FAST_SMALL.native_batch_size == 64
        assert FAST_SMALL.peak_matrix_flops / 1e12 == pytest.approx(32, rel=0.05)

    def test_tpu_is_dual_core(self):
        assert TPU_V3.num_cores == 2


class TestTrialEvaluator:
    @pytest.fixture(scope="class")
    def problem(self):
        return SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)

    @pytest.fixture(scope="class")
    def evaluator(self, problem):
        return TrialEvaluator(problem)

    def test_evaluate_feasible_design(self, evaluator):
        metrics = evaluator.evaluate_config(FAST_SMALL)
        assert metrics.feasible
        assert metrics.per_workload_qps["efficientnet-b0"] > 0
        assert metrics.aggregate_score > 0
        assert metrics.objective_value < 0

    def test_infeasible_when_constraints_tiny(self):
        problem = SearchProblem(
            ["efficientnet-b0"],
            constraints=EvaluationConstraints(max_area_mm2=1.0, max_tdp_w=1.0),
        )
        metrics = TrialEvaluator(problem).evaluate_config(FAST_SMALL)
        assert not metrics.feasible
        assert "constraints" in metrics.failure_reason
        assert math.isinf(metrics.objective_value)

    def test_evaluate_params_builds_config(self, evaluator):
        space = DatapathSearchSpace()
        params = space.from_config(FAST_SMALL)
        metrics = evaluator.evaluate_params(params, space)
        assert metrics.config.systolic_array_x == FAST_SMALL.systolic_array_x

    def test_perf_per_tdp_helper(self, evaluator):
        metrics = evaluator.evaluate_config(FAST_SMALL)
        expected = metrics.per_workload_qps["efficientnet-b0"] / metrics.tdp_w
        assert metrics.perf_per_tdp("efficientnet-b0") == pytest.approx(expected)

    def test_simulate_design_returns_full_result(self, evaluator):
        result = evaluator.simulate_design(FAST_SMALL, "efficientnet-b0")
        assert result.qps > 0


class TestFASTSearch:
    def test_small_search_finds_feasible_design(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        search = FASTSearch(problem, optimizer="lcs", seed=0)
        result = search.run(num_trials=20)
        assert result.num_trials == 20
        assert result.num_feasible_trials > 0
        assert result.best_config is not None
        assert result.best_score > 0
        assert len(result.best_score_curve) == 20

    def test_best_score_curve_monotone(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        result = FASTSearch(problem, optimizer="random", seed=1).run(num_trials=15)
        curve = result.best_score_curve
        assert all(curve[i + 1] >= curve[i] for i in range(len(curve) - 1))

    def test_callback_invoked_per_trial(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.THROUGHPUT)
        seen = []
        FASTSearch(problem, optimizer="random", seed=2).run(
            num_trials=5, callback=lambda i, m: seen.append(i)
        )
        assert seen == list(range(5))

    def test_pareto_front_populated(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        result = FASTSearch(problem, optimizer="random", seed=3).run(num_trials=15)
        if result.num_feasible_trials:
            assert len(result.pareto_front) >= 1

    def test_search_respects_constraints(self):
        problem = SearchProblem(["efficientnet-b0"], ObjectiveKind.PERF_PER_TDP)
        result = FASTSearch(problem, optimizer="random", seed=4).run(num_trials=15)
        constraints = problem.constraints
        for metrics in result.history:
            if metrics.feasible:
                assert metrics.area_mm2 <= constraints.max_area_mm2 + 1e-6
                assert metrics.tdp_w <= constraints.max_tdp_w + 1e-6
