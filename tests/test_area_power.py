"""Tests for the analytical area and power (TDP) models."""

import pytest

from repro.hardware.area_power import AreaPowerModel, TechnologyModel
from repro.hardware.datapath import DatapathConfig, L2Config, MemoryTechnology
from repro.hardware.tpu import TPU_V3


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel()


class TestBreakdownStructure:
    def test_totals_are_sums_of_components(self, model):
        breakdown = model.evaluate(DatapathConfig())
        as_dict = breakdown.as_dict()
        area_components = [
            as_dict[k] for k in as_dict if k.endswith("_area_mm2") and k != "total_area_mm2"
        ]
        power_components = [
            as_dict[k] for k in as_dict if k.endswith("_power_w") and k != "total_tdp_w"
        ]
        assert sum(area_components) == pytest.approx(as_dict["total_area_mm2"])
        assert sum(power_components) == pytest.approx(as_dict["total_tdp_w"])

    def test_all_components_non_negative(self, model):
        breakdown = model.evaluate(DatapathConfig())
        assert all(v >= 0 for v in breakdown.as_dict().values())

    def test_convenience_accessors(self, model):
        config = DatapathConfig()
        assert model.area_mm2(config) == pytest.approx(model.evaluate(config).total_area_mm2)
        assert model.tdp_w(config) == pytest.approx(model.evaluate(config).total_tdp_w)


class TestScalingBehaviour:
    def test_more_macs_cost_more_area_and_power(self, model):
        small = DatapathConfig(systolic_array_x=16, systolic_array_y=16)
        large = DatapathConfig(systolic_array_x=64, systolic_array_y=64)
        assert model.area_mm2(large) > model.area_mm2(small)
        assert model.tdp_w(large) > model.tdp_w(small)

    def test_larger_global_memory_costs_more_area(self, model):
        small = DatapathConfig(l3_global_buffer_mib=16)
        large = DatapathConfig(l3_global_buffer_mib=256)
        assert model.area_mm2(large) > model.area_mm2(small)

    def test_larger_l1_raises_tdp(self, model):
        """Table 6: moving from 8 KiB to 32 KiB L1 scratchpads raises TDP."""
        small = DatapathConfig(
            l1_input_buffer_kib=4, l1_weight_buffer_kib=2, l1_output_buffer_kib=2
        )
        large = DatapathConfig(
            l1_input_buffer_kib=16, l1_weight_buffer_kib=8, l1_output_buffer_kib=8
        )
        assert model.tdp_w(large) > model.tdp_w(small)

    def test_enabling_l2_raises_tdp(self, model):
        """Section 6.2.5: L2 buffers increase TDP under power-virus accounting."""
        without = DatapathConfig(l2_buffer_config=L2Config.DISABLED)
        with_l2 = DatapathConfig(l2_buffer_config=L2Config.SHARED)
        assert model.tdp_w(with_l2) > model.tdp_w(without)

    def test_more_dram_channels_cost_more(self, model):
        few = DatapathConfig(gddr6_channels=2)
        many = DatapathConfig(gddr6_channels=8)
        assert model.tdp_w(many) > model.tdp_w(few)
        assert model.area_mm2(many) > model.area_mm2(few)

    def test_hbm_costs_more_than_gddr6_per_channel(self, model):
        gddr = DatapathConfig(gddr6_channels=2, memory_technology=MemoryTechnology.GDDR6)
        hbm = DatapathConfig(gddr6_channels=2, memory_technology=MemoryTechnology.HBM2)
        assert model.tdp_w(hbm) > model.tdp_w(gddr)

    def test_dual_core_roughly_doubles_compute_power(self, model):
        single = model.evaluate(DatapathConfig(num_cores=1))
        dual = model.evaluate(DatapathConfig(num_cores=2))
        assert dual.mac_power_w == pytest.approx(2 * single.mac_power_w)


class TestCalibration:
    def test_tpu_v3_peak_flops(self):
        assert TPU_V3.peak_matrix_flops / 1e12 == pytest.approx(123, rel=0.02)

    def test_tpu_v3_bandwidth(self):
        assert TPU_V3.dram_bandwidth_bytes_per_s / 1e9 == pytest.approx(900, rel=0.01)

    def test_tpu_v3_ridgepoint_matches_paper(self):
        """Section 4.1: TPU-v3 needs ~137 FLOPS/B to avoid memory-boundedness."""
        assert TPU_V3.operational_intensity_ridgepoint == pytest.approx(137, rel=0.03)

    def test_tpu_v3_area_and_tdp_plausible(self, model):
        breakdown = model.evaluate(TPU_V3)
        assert 100 < breakdown.total_area_mm2 < 600
        assert 100 < breakdown.total_tdp_w < 450

    def test_sram_energy_grows_with_macro_size(self):
        tech = TechnologyModel()
        assert tech.sram_energy_per_byte(256) > tech.sram_energy_per_byte(8)

    def test_custom_technology_scales_results(self):
        cheap = AreaPowerModel(TechnologyModel(mac_energy_pj=0.1))
        default = AreaPowerModel()
        config = DatapathConfig()
        assert cheap.evaluate(config).mac_power_w < default.evaluate(config).mac_power_w
