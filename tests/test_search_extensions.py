"""Tests for the additional optimizers: annealing, coordinate descent, safe search, transfer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hardware.search_space import DatapathSearchSpace
from repro.search import (
    CoordinateDescentOptimizer,
    SafeSearchOptimizer,
    SimulatedAnnealingOptimizer,
    TransferWarmStartOptimizer,
    make_optimizer,
    top_configurations,
)
from repro.search.optimizer import Observation


@pytest.fixture(scope="module")
def space():
    return DatapathSearchSpace()


@pytest.fixture(scope="module")
def target_objective(space):
    """A smooth synthetic objective: squared distance to a fixed target point."""
    rng = np.random.default_rng(1234)
    target = space.encode(space.sample(rng))

    def objective(params):
        return float(np.sum((space.encode(params) - target) ** 2))

    return objective


def run_optimizer(optimizer, objective, num_trials, feasible_fn=None):
    for _ in range(num_trials):
        params = optimizer.ask()
        feasible = True if feasible_fn is None else feasible_fn(params)
        value = objective(params) if feasible else math.inf
        optimizer.tell(params, value, feasible=feasible)
    return optimizer


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
class TestMakeOptimizer:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("annealing", SimulatedAnnealingOptimizer),
            ("sa", SimulatedAnnealingOptimizer),
            ("coordinate", CoordinateDescentOptimizer),
            ("cd", CoordinateDescentOptimizer),
        ],
    )
    def test_new_names_resolve(self, space, name, cls):
        assert isinstance(make_optimizer(name, space), cls)

    def test_safe_prefix_wraps_inner(self, space):
        optimizer = make_optimizer("safe:random", space)
        assert isinstance(optimizer, SafeSearchOptimizer)

    def test_unknown_name_raises(self, space):
        with pytest.raises(ValueError):
            make_optimizer("gradient-descent", space)


# ---------------------------------------------------------------------------
# Simulated annealing
# ---------------------------------------------------------------------------
class TestSimulatedAnnealing:
    def test_proposals_are_valid_configurations(self, space):
        optimizer = SimulatedAnnealingOptimizer(space, seed=0)
        for _ in range(20):
            params = optimizer.ask()
            for spec in space.specs:
                assert params[spec.name] in spec.choices
            optimizer.tell(params, 1.0)

    def test_improves_over_random_initialization(self, space, target_objective):
        optimizer = run_optimizer(
            SimulatedAnnealingOptimizer(space, seed=3), target_objective, 120
        )
        curve = optimizer.best_objective_curve()
        assert curve[-1] <= curve[10]
        assert optimizer.best_observation().objective == pytest.approx(curve[-1])

    def test_temperature_decays(self, space):
        optimizer = SimulatedAnnealingOptimizer(space, seed=0, initial_temperature=0.5)
        start = optimizer.temperature
        run_optimizer(optimizer, lambda p: 1.0, 30)
        assert optimizer.temperature < start
        assert optimizer.temperature >= optimizer.min_temperature

    def test_incumbent_tracks_accepted_point(self, space, target_objective):
        optimizer = run_optimizer(
            SimulatedAnnealingOptimizer(space, seed=5), target_objective, 40
        )
        assert optimizer.incumbent is not None
        for spec in space.specs:
            assert optimizer.incumbent[spec.name] in spec.choices

    def test_infeasible_trials_never_become_incumbent(self, space):
        optimizer = SimulatedAnnealingOptimizer(space, seed=2, num_initial_random=1)
        params = optimizer.ask()
        optimizer.tell(params, math.inf, feasible=False)
        assert optimizer.incumbent is None

    def test_deterministic_with_same_seed(self, space, target_objective):
        a = run_optimizer(SimulatedAnnealingOptimizer(space, seed=7), target_objective, 30)
        b = run_optimizer(SimulatedAnnealingOptimizer(space, seed=7), target_objective, 30)
        assert [o.objective for o in a.observations] == [o.objective for o in b.observations]

    def test_invalid_hyperparameters_rejected(self, space):
        with pytest.raises(ValueError):
            SimulatedAnnealingOptimizer(space, initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingOptimizer(space, cooling_rate=1.5)


# ---------------------------------------------------------------------------
# Coordinate descent
# ---------------------------------------------------------------------------
class TestCoordinateDescent:
    def test_sweeps_one_axis_at_a_time(self, space, target_objective):
        optimizer = CoordinateDescentOptimizer(space, seed=0, num_initial_random=2)
        run_optimizer(optimizer, target_objective, 2)
        incumbent = optimizer.best_params
        proposal = optimizer.ask()
        changed = [
            spec.name for spec in space.specs if proposal[spec.name] != incumbent[spec.name]
        ]
        assert len(changed) == 1

    def test_finds_improvement_on_synthetic_objective(self, space, target_objective):
        optimizer = run_optimizer(
            CoordinateDescentOptimizer(space, seed=1), target_objective, 150
        )
        curve = optimizer.best_objective_curve()
        assert curve[-1] < curve[8]

    def test_best_params_is_feasible_minimum(self, space, target_objective):
        optimizer = run_optimizer(
            CoordinateDescentOptimizer(space, seed=4), target_objective, 60
        )
        best = optimizer.best_observation()
        assert target_objective(optimizer.best_params) == pytest.approx(best.objective)

    def test_handles_all_infeasible_gracefully(self, space):
        optimizer = CoordinateDescentOptimizer(space, seed=0)
        run_optimizer(optimizer, lambda p: math.inf, 10, feasible_fn=lambda p: False)
        assert optimizer.best_params is None
        # Still proposes valid random points without crashing.
        params = optimizer.ask()
        assert set(params) == set(space.parameter_names)


# ---------------------------------------------------------------------------
# Safe search
# ---------------------------------------------------------------------------
class TestSafeSearch:
    def test_infeasible_trials_become_finite_penalties(self, space):
        optimizer = SafeSearchOptimizer(space, seed=0, inner="random")
        params = optimizer.ask()
        optimizer.tell(params, 2.0, feasible=True)
        params = optimizer.ask()
        optimizer.tell(params, math.inf, feasible=False)
        inner_objectives = [obs.objective for obs in optimizer.inner.observations]
        assert all(math.isfinite(v) for v in inner_objectives)
        assert max(inner_objectives) > 2.0

    def test_outer_history_preserves_true_feasibility(self, space):
        optimizer = SafeSearchOptimizer(space, seed=0, inner="random")
        params = optimizer.ask()
        optimizer.tell(params, math.inf, feasible=False)
        assert optimizer.observations[0].feasible is False
        assert optimizer.best_observation() is None

    def test_penalty_exceeds_worst_feasible(self, space):
        optimizer = SafeSearchOptimizer(space, seed=0, inner="random")
        for value in (1.0, 3.0, 2.0):
            optimizer.tell(optimizer.ask(), value, feasible=True)
        assert optimizer.penalty_objective() > 3.0

    def test_penalty_without_feasible_history_is_finite(self, space):
        optimizer = SafeSearchOptimizer(space, seed=0, inner="random")
        assert math.isfinite(optimizer.penalty_objective())

    def test_requires_shared_space(self, space):
        other_space = DatapathSearchSpace()
        inner = make_optimizer("random", other_space)
        with pytest.raises(ValueError):
            SafeSearchOptimizer(space, inner=inner)


# ---------------------------------------------------------------------------
# Transfer warm start
# ---------------------------------------------------------------------------
class TestTransferWarmStart:
    def _prior(self, space, num=5, seed=0):
        rng = np.random.default_rng(seed)
        observations = []
        for i in range(num):
            params = space.sample(rng)
            observations.append(
                Observation(params=params, objective=float(i), feasible=True, trial_index=i)
            )
        return observations

    def test_replays_prior_best_first(self, space):
        prior = self._prior(space)
        optimizer = TransferWarmStartOptimizer(
            space, seed=0, inner="random", prior_observations=prior, num_warm_start=3
        )
        first = optimizer.ask()
        assert first == prior[0].params  # objective 0.0 was the prior best
        assert optimizer.num_pending_warm_starts == 2

    def test_delegates_after_queue_drains(self, space, target_objective):
        prior = self._prior(space, num=2)
        optimizer = TransferWarmStartOptimizer(
            space, seed=0, inner="random", prior_observations=prior
        )
        run_optimizer(optimizer, target_objective, 10)
        assert optimizer.num_pending_warm_starts == 0
        assert optimizer.num_trials == 10
        assert optimizer.inner.num_trials == 10

    def test_top_configurations_orders_and_filters(self, space):
        prior = self._prior(space, num=4)
        prior.append(
            Observation(params=space.sample(np.random.default_rng(9)), objective=-5.0,
                        feasible=False, trial_index=4)
        )
        top = top_configurations(prior, 2)
        assert len(top) == 2
        assert top[0] == prior[0].params

    def test_duplicate_priors_deduplicated(self, space):
        rng = np.random.default_rng(0)
        params = space.sample(rng)
        optimizer = TransferWarmStartOptimizer(
            space, seed=0, inner="random", prior_params=[params, dict(params)]
        )
        assert optimizer.num_pending_warm_starts == 1
