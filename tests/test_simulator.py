"""Tests for the whole-graph simulator, vector op costs, roofline, and results."""

import pytest

from repro.compiler.softmax import THREE_PASS_SOFTMAX, TWO_PASS_SOFTMAX
from repro.hardware.datapath import DatapathConfig
from repro.simulator.engine import SimulationOptions, Simulator
from repro.simulator.roofline import attainable_flops, roofline_point
from repro.simulator.vector_ops import vector_op_cost, vpu_lanes_per_core
from repro.workloads.builder import GraphBuilder
from repro.workloads.ops import OpType


class TestVectorOpCosts:
    def _softmax_graph(self, elements=4096):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, elements))
        builder.softmax(x, name="sm")
        return builder.graph

    def test_vpu_lane_count(self, small_config):
        assert vpu_lanes_per_core(small_config) == (
            small_config.num_pes * small_config.vpu_lanes_per_pe
        )

    def test_softmax_cost_scales_inversely_with_lanes(self):
        graph = self._softmax_graph()
        narrow = DatapathConfig(vector_unit_multiplier=1)
        wide = DatapathConfig(vector_unit_multiplier=8)
        op = graph.op("sm")
        cost_narrow = vector_op_cost(op, graph.tensors, narrow)
        cost_wide = vector_op_cost(op, graph.tensors, wide)
        assert cost_wide.vector_cycles < cost_narrow.vector_cycles

    def test_two_pass_softmax_trades_traffic_for_flops(self, small_config):
        graph = self._softmax_graph()
        op = graph.op("sm")
        three = vector_op_cost(op, graph.tensors, small_config, THREE_PASS_SOFTMAX)
        two = vector_op_cost(op, graph.tensors, small_config, TWO_PASS_SOFTMAX)
        assert two.dram_output_bytes < three.dram_output_bytes
        assert two.vector_cycles > three.vector_cycles

    def test_reshape_is_free(self, small_config):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 64))
        builder.reshape(x, (64,), name="r")
        cost = vector_op_cost(builder.graph.op("r"), builder.graph.tensors, small_config)
        assert cost.vector_cycles == 0
        assert cost.dram_bytes == 0

    def test_layernorm_reads_input_twice(self, small_config):
        builder = GraphBuilder("g")
        x = builder.input("x", (1, 1024))
        builder.layernorm(x, name="ln")
        cost = vector_op_cost(builder.graph.op("ln"), builder.graph.tensors, small_config)
        assert cost.dram_input_bytes == pytest.approx(2 * 1024 * 2)


class TestRoofline:
    def test_memory_bound_below_ridge(self, tpu_config):
        point = roofline_point(tpu_config, operational_intensity=30.0)
        assert point.memory_bound
        assert point.attainable_flops < tpu_config.peak_matrix_flops

    def test_compute_bound_above_ridge(self, tpu_config):
        point = roofline_point(tpu_config, operational_intensity=500.0)
        assert not point.memory_bound
        assert point.attainable_flops == pytest.approx(tpu_config.peak_matrix_flops)

    def test_attainable_scales_linearly_when_memory_bound(self, tpu_config):
        assert attainable_flops(tpu_config, 20.0) == pytest.approx(
            2 * attainable_flops(tpu_config, 10.0)
        )

    def test_zero_intensity(self, tpu_config):
        assert attainable_flops(tpu_config, 0.0) == 0.0


class TestSimulatorInvariants:
    def test_result_structure(self, tiny_on_small, tiny_graph):
        result = tiny_on_small
        assert result.workload == tiny_graph.name
        assert not result.schedule_failed
        assert result.total_cycles > 0
        assert result.qps > 0
        assert result.latency_ms > 0
        assert len(result.regions) > 0

    def test_flops_conserved(self, tiny_on_small, tiny_graph):
        assert tiny_on_small.total_flops == pytest.approx(tiny_graph.total_flops(), rel=0.01)

    def test_post_fusion_never_slower(self, b0_on_fast_large):
        assert b0_on_fast_large.total_cycles <= b0_on_fast_large.pre_fusion_cycles + 1e-6

    def test_post_fusion_traffic_never_larger(self, b0_on_fast_large):
        assert (
            b0_on_fast_large.dram_bytes_post_fusion
            <= b0_on_fast_large.dram_bytes_pre_fusion + 1e-6
        )

    def test_region_times_at_least_busy(self, b0_on_fast_large):
        for region in b0_on_fast_large.regions:
            assert region.post_fusion_cycles >= region.busy_cycles - 1e-6

    def test_utilization_in_unit_interval(self, b0_on_tpu, b0_on_fast_large):
        for result in (b0_on_tpu, b0_on_fast_large):
            assert 0 < result.compute_utilization <= 1.0
            for value in result.per_layer_utilization():
                assert 0 <= value <= 1.0

    def test_runtime_fractions_sum_to_one(self, b0_on_tpu):
        fractions = b0_on_tpu.runtime_fraction_by_op_type()
        assert sum(fractions.values()) == pytest.approx(1.0)
        flop_fractions = b0_on_tpu.flop_fraction_by_op_type()
        assert sum(flop_fractions.values()) == pytest.approx(1.0)

    def test_memory_stall_fraction_bounds(self, b0_on_tpu):
        for post in (True, False):
            stall = b0_on_tpu.memory_stall_fraction(post_fusion=post)
            assert 0.0 <= stall <= 1.0

    def test_qps_scales_with_cores(self, tiny_graph, small_config):
        single = Simulator(small_config.evolve(num_cores=1)).simulate(tiny_graph)
        dual = Simulator(small_config.evolve(num_cores=2, gddr6_channels=4)).simulate(tiny_graph)
        assert dual.qps == pytest.approx(2 * single.qps, rel=0.05)

    def test_summary_keys(self, tiny_on_small):
        summary = tiny_on_small.summary()
        for key in ("qps", "latency_ms", "compute_utilization", "fusion_efficiency"):
            assert key in summary

    def test_perf_per_tdp_helper(self, tiny_on_small):
        assert tiny_on_small.perf_per_tdp(100.0) == pytest.approx(tiny_on_small.qps / 100.0)
        assert tiny_on_small.perf_per_tdp(0.0) == 0.0


class TestFusionInteraction:
    def test_disabling_fusion_is_never_faster(self, tiny_graph, fast_large_config):
        fused = Simulator(fast_large_config).simulate(tiny_graph)
        unfused = Simulator(
            fast_large_config, SimulationOptions(enable_fast_fusion=False)
        ).simulate(tiny_graph)
        assert fused.total_cycles <= unfused.total_cycles + 1e-6

    def test_no_global_memory_means_no_fusion(self, tiny_graph):
        config = DatapathConfig(l3_global_buffer_mib=0)
        result = Simulator(config).simulate(tiny_graph)
        assert result.fusion_result is None

    def test_fusion_improves_efficientnet_on_fast_large(self, b0_on_fast_large):
        """Section 6.2.7: fusion removes memory stalls on bandwidth-starved designs."""
        assert b0_on_fast_large.fusion_result is not None
        assert b0_on_fast_large.fusion_result.speedup >= 1.0
        assert b0_on_fast_large.operational_intensity(post_fusion=True) >= (
            b0_on_fast_large.operational_intensity(post_fusion=False)
        )

    def test_larger_global_memory_never_hurts(self, tiny_graph):
        small_gm = DatapathConfig(l3_global_buffer_mib=1, gddr6_channels=1)
        big_gm = DatapathConfig(l3_global_buffer_mib=128, gddr6_channels=1)
        r_small = Simulator(small_gm).simulate(tiny_graph)
        r_big = Simulator(big_gm).simulate(tiny_graph)
        assert r_big.total_cycles <= r_small.total_cycles + 1e-6


class TestScheduleFailures:
    def test_infeasible_datapath_reports_failure(self, tiny_graph):
        from repro.hardware.datapath import BufferConfig

        config = DatapathConfig(
            systolic_array_x=256,
            systolic_array_y=256,
            l1_buffer_config=BufferConfig.PRIVATE,
            l1_input_buffer_kib=1,
            l1_weight_buffer_kib=1,
            l1_output_buffer_kib=1,
        )
        result = Simulator(config).simulate(tiny_graph)
        assert result.schedule_failed
        assert result.qps == 0.0
