"""Tests for the workload extensions: quantization, training graphs, MobileNetV2, BERT-Large."""

from __future__ import annotations

import pytest

from repro.simulator.engine import Simulator
from repro.workloads.graph import DType, TensorKind
from repro.workloads.mobilenet import MOBILENET_V2_BLOCKS, build_mobilenet_v2
from repro.workloads.ops import OpType
from repro.workloads.quantization import QuantizationRecipe, memory_savings, quantize_graph
from repro.workloads.registry import available_workloads, build_workload
from repro.workloads.training import TrainingOptions, build_training_graph, training_flops_ratio


# ---------------------------------------------------------------------------
# Quantization
# ---------------------------------------------------------------------------
class TestQuantization:
    def test_structure_preserved(self, tiny_graph):
        quantized = quantize_graph(tiny_graph)
        assert len(quantized) == len(tiny_graph)
        assert [op.name for op in quantized.ops] == [op.name for op in tiny_graph.ops]
        assert quantized.input_names == tiny_graph.input_names
        assert quantized.output_names == tiny_graph.output_names

    def test_int8_halves_bf16_footprints(self, tiny_graph):
        quantized = quantize_graph(tiny_graph)
        savings = memory_savings(tiny_graph, quantized)
        assert savings["weight_reduction"] == pytest.approx(2.0)
        assert savings["working_set_reduction"] == pytest.approx(2.0)
        assert savings["activation_reduction"] == pytest.approx(2.0)

    def test_weight_only_recipe_keeps_activations(self, tiny_graph):
        quantized = quantize_graph(tiny_graph, QuantizationRecipe.weight_only())
        for tensor in quantized.tensors.values():
            if tensor.kind is TensorKind.ACTIVATION:
                assert tensor.dtype is DType.BFLOAT16
            else:
                assert tensor.dtype is DType.INT8

    def test_flops_unchanged(self, tiny_graph):
        quantized = quantize_graph(tiny_graph)
        assert quantized.total_flops() == tiny_graph.total_flops()

    def test_quantized_graph_simulates_faster_or_equal(self, tiny_graph, small_config):
        baseline = Simulator(small_config).simulate(tiny_graph)
        quantized = Simulator(small_config).simulate(quantize_graph(tiny_graph))
        assert quantized.dram_bytes_pre_fusion < baseline.dram_bytes_pre_fusion
        assert quantized.total_cycles <= baseline.total_cycles

    def test_efficientnet_b0_quantization_raises_intensity(self, efficientnet_b0):
        from repro.analysis.intensity import operational_intensity

        quantized = quantize_graph(efficientnet_b0)
        assert operational_intensity(quantized, "none") > operational_intensity(
            efficientnet_b0, "none"
        )


# ---------------------------------------------------------------------------
# Training graphs
# ---------------------------------------------------------------------------
class TestTrainingGraph:
    def test_training_graph_is_valid_and_larger(self, tiny_graph):
        train = build_training_graph(tiny_graph)
        train.validate()
        assert len(train) > len(tiny_graph)
        assert train.name.endswith("-train")

    def test_flops_ratio_in_expected_band(self, tiny_graph):
        train = build_training_graph(tiny_graph)
        ratio = training_flops_ratio(tiny_graph, train)
        # Forward + grad-input + grad-weight: roughly 2x-4x the forward FLOPs.
        assert 1.5 < ratio < 5.0

    def test_loss_is_an_output(self, tiny_graph):
        train = build_training_graph(tiny_graph)
        assert "loss" in train.output_names

    def test_backward_ops_generated_per_matrix_op(self, tiny_graph):
        train = build_training_graph(tiny_graph)
        names = [op.name for op in train.ops]
        for op in tiny_graph.ops:
            if op.is_matrix_op:
                assert any(n.startswith(f"{op.name}.bwd") for n in names)

    def test_optimizer_choice_controls_update_ops(self, tiny_graph):
        sgd = build_training_graph(tiny_graph, TrainingOptions(optimizer="sgd"))
        adam = build_training_graph(tiny_graph, TrainingOptions(optimizer="adam"))
        assert len(adam) > len(sgd)

    def test_no_weight_update_option(self, tiny_graph):
        bare = build_training_graph(tiny_graph, TrainingOptions(include_weight_update=False))
        assert not any("optimizer_step" in op.name for op in bare.ops)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            TrainingOptions(optimizer="lion")

    def test_training_graph_simulates(self, tiny_graph, small_config):
        train = build_training_graph(tiny_graph)
        result = Simulator(small_config).simulate(train)
        assert not result.schedule_failed
        assert result.total_cycles > Simulator(small_config).simulate(tiny_graph).total_cycles

    def test_bert_training_ratio(self):
        bert = build_workload("bert-seq128", batch_size=1)
        train = build_training_graph(bert)
        assert training_flops_ratio(bert, train) > 2.0


# ---------------------------------------------------------------------------
# MobileNetV2
# ---------------------------------------------------------------------------
class TestMobileNetV2:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_mobilenet_v2(batch_size=1)

    def test_registered_in_registry(self):
        assert "mobilenet-v2" in available_workloads()

    def test_block_structure(self, graph):
        total_blocks = sum(repeats for _, _, repeats, _ in MOBILENET_V2_BLOCKS)
        depthwise_ops = [op for op in graph.ops if op.op_type is OpType.DEPTHWISE_CONV2D]
        assert len(depthwise_ops) == total_blocks

    def test_flop_count_in_published_range(self, graph):
        # MobileNetV2 (1.0, 224) is ~300M MACs = ~0.6 GFLOPs; the cost model
        # counts multiply+add so allow a generous band around 0.6e9.
        flops = graph.total_flops()
        assert 0.4e9 < flops < 1.2e9

    def test_parameter_count_in_published_range(self, graph):
        # ~3.5M parameters at bf16 = ~7 MiB.
        weight_mib = graph.weight_bytes() / (1024 * 1024)
        assert 4 < weight_mib < 12

    def test_width_multiplier_scales_model(self):
        slim = build_mobilenet_v2(width_multiplier=0.5)
        wide = build_mobilenet_v2(width_multiplier=1.4)
        assert slim.total_flops() < wide.total_flops()
        assert slim.weight_bytes() < wide.weight_bytes()

    def test_invalid_width_multiplier(self):
        with pytest.raises(ValueError):
            build_mobilenet_v2(width_multiplier=0.0)

    def test_batch_scaling(self):
        b1 = build_mobilenet_v2(batch_size=1)
        b4 = build_mobilenet_v2(batch_size=4)
        assert b4.total_flops() == pytest.approx(4 * b1.total_flops(), rel=0.01)
        assert b4.weight_bytes() == b1.weight_bytes()

    def test_simulates_on_tpu_baseline(self, tpu_config):
        result = Simulator(tpu_config).simulate_workload("mobilenet-v2", batch_size=1)
        assert not result.schedule_failed
        assert result.qps > 0


# ---------------------------------------------------------------------------
# BERT-Large registry entries
# ---------------------------------------------------------------------------
class TestBertLarge:
    def test_registered(self):
        names = available_workloads()
        assert "bert-large-seq128" in names
        assert "bert-large-seq512" in names

    def test_larger_than_base(self):
        base = build_workload("bert-seq128")
        large = build_workload("bert-large-seq128")
        assert large.total_flops() > 2 * base.total_flops()
        assert large.weight_bytes() > 2 * base.weight_bytes()

    def test_sequence_length_scaling(self):
        short = build_workload("bert-large-seq128")
        long = build_workload("bert-large-seq512")
        assert long.total_flops() > 3 * short.total_flops()
