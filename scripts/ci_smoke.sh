#!/usr/bin/env bash
# CI smoke suite — the exact invocations CI runs, runnable locally:
#
#   scripts/ci_smoke.sh [all|search|sweep|profile|mapper-equiv|backend-equiv|bench|remote|telemetry|chaos|cache-tier|coverage]
#
# `all` (the default) runs every smoke except `coverage`, which is its own
# CI job.  Artifacts land in $SMOKE_DIR (default: a fresh temp dir); CI sets
# SMOKE_DIR to a fixed path and uploads the JSON artifacts from there.
#
# Smokes fail on crashes, non-zero exits, and equivalence breaks — never on
# timing, so they stay reliable on loaded CI runners.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d /tmp/repro-smoke.XXXXXX)}"
mkdir -p "$SMOKE_DIR"

log() { printf '\n=== %s ===\n' "$*"; }

# --------------------------------------------------------------------------
# 1. Parallel search smoke (runtime subsystem: workers, cache, checkpoint)
# --------------------------------------------------------------------------
smoke_search() {
    log "search smoke: 2 workers, cache, checkpoint, progress"
    python -m repro search \
        --workload efficientnet-b0 --trials 20 \
        --workers 2 --batch-size 4 \
        --cache "$SMOKE_DIR/trials.jsonl" --checkpoint "$SMOKE_DIR/search.ckpt" \
        --progress
}

# --------------------------------------------------------------------------
# 2. Sharded sweep smoke (2 shards, shared cache, compaction)
# --------------------------------------------------------------------------
smoke_sweep() {
    log "sweep smoke: 2 shards, shared cache, exchange, compaction"
    python -m repro sweep \
        --workload efficientnet-b0 --trials 16 --shards 2 \
        --optimizer random --batch-size 4 \
        --cache "$SMOKE_DIR/sweep-trials.jsonl" \
        --exchange "$SMOKE_DIR/sweep-scores.json" \
        --output "$SMOKE_DIR/sweep.json"
    python -m repro cache compact \
        --cache "$SMOKE_DIR/sweep-trials.jsonl" --max-entries 12
}

# --------------------------------------------------------------------------
# 3. Mapper profile smoke (fails on crash or equivalence break, not timing)
# --------------------------------------------------------------------------
smoke_profile() {
    log "profile smoke: scalar vs vectorized vs op-cached equivalence"
    python -m repro profile \
        --workload mobilenet-v2 --trials 8 --batch-size 4 \
        --warm-op-cache --output "$SMOKE_DIR/mapper-profile.json"
}

# --------------------------------------------------------------------------
# 3b. Graph-batched vs per-op vs scalar mapper equivalence smoke: the same
#     fixed-seed search under all three engines (plus default caches off /
#     on) must produce bit-for-bit identical histories.
# --------------------------------------------------------------------------
smoke_mapper_equiv() {
    log "mapper equivalence smoke: graph-batched vs per-op vs scalar history"
    local common=(--workload efficientnet-b0 --trials 12 --batch-size 4 --seed 0 --history)
    python -m repro search "${common[@]}" \
        --output "$SMOKE_DIR/search-graph-batched.json"
    python -m repro search "${common[@]}" \
        --per-op-mapper --no-region-cache --no-op-cache \
        --output "$SMOKE_DIR/search-per-op.json"
    python -m repro search "${common[@]}" \
        --scalar-mapper --no-region-cache --no-op-cache \
        --output "$SMOKE_DIR/search-scalar.json"

    python - "$SMOKE_DIR/search-scalar.json" "$SMOKE_DIR/search-per-op.json" \
        "$SMOKE_DIR/search-graph-batched.json" <<'PY'
import json, sys
reference = json.load(open(sys.argv[1]))
for path in sys.argv[2:]:
    other = json.load(open(path))
    for key in ("proposals", "history", "best_score_curve", "best_score"):
        if reference.get(key) != other.get(key):
            raise SystemExit(f"{path} diverged from the scalar reference on {key!r}")
print("graph-batched == per-op == scalar bit-for-bit over",
      len(reference.get("history") or []), "trials")
PY
}

# --------------------------------------------------------------------------
# 3c. Engine/backend equivalence smoke: the trial-batched engine must
#     reproduce the graph-batched history bit-for-bit, and every installed
#     array backend must pass the kernel tolerance check.
# --------------------------------------------------------------------------
smoke_backend_equiv() {
    log "backend equivalence smoke: trial-batched history + backend check"
    local common=(--workload efficientnet-b0 --trials 12 --batch-size 4 --seed 0 --history)
    python -m repro search "${common[@]}" \
        --engine graph-batched \
        --output "$SMOKE_DIR/engine-graph-batched.json"
    python -m repro search "${common[@]}" \
        --engine trial-batched \
        --output "$SMOKE_DIR/engine-trial-batched.json"

    python - "$SMOKE_DIR/engine-graph-batched.json" \
        "$SMOKE_DIR/engine-trial-batched.json" <<'PY'
import json, sys
reference = json.load(open(sys.argv[1]))
other = json.load(open(sys.argv[2]))
for key in ("proposals", "history", "best_score_curve", "best_score"):
    if reference.get(key) != other.get(key):
        raise SystemExit(f"trial-batched diverged from graph-batched on {key!r}")
print("trial-batched == graph-batched bit-for-bit over",
      len(reference.get("history") or []), "trials")
PY

    python -m repro profile --check-backends
}

# --------------------------------------------------------------------------
# 4. Mapper throughput benchmark smoke (tiny budget, no timing asserts)
# --------------------------------------------------------------------------
smoke_bench() {
    log "bench smoke: mapper throughput benchmark, tiny budget"
    (cd benchmarks && REPRO_BENCH_TRIALS=16 REPRO_BENCH_NO_TIMING_ASSERTS=1 \
        PYTHONPATH="../src" python -m pytest bench_mapper_throughput.py -q)
}

# --------------------------------------------------------------------------
# 5. Remote-executor smoke: serve in the background, search against it,
#    assert the history equals the serial run bit-for-bit, export the
#    RuntimeStats JSON as a CI artifact.
# --------------------------------------------------------------------------
smoke_remote() {
    log "remote smoke: repro serve + --executor remote, history equivalence"
    local serve_log="$SMOKE_DIR/serve.log"
    python -m repro serve --port 0 --workers 1 >"$serve_log" 2>&1 &
    local serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' RETURN

    local url=""
    for _ in $(seq 1 60); do
        url=$(sed -n 's/.*\(http:\/\/[0-9.]*:[0-9]*\).*/\1/p' "$serve_log" | head -1)
        if [ -n "$url" ] && python - "$url" <<'PY'
import json, sys, urllib.request
with urllib.request.urlopen(sys.argv[1] + "/health", timeout=2) as r:
    assert json.loads(r.read())["status"] == "ok"
PY
        then break; fi
        url=""
        sleep 0.5
    done
    [ -n "$url" ] || { echo "repro serve never became healthy"; cat "$serve_log"; exit 1; }
    echo "service healthy at $url"

    python -m repro search \
        --workload efficientnet-b0 --trials 16 --batch-size 4 --seed 0 \
        --output "$SMOKE_DIR/serial-search.json" --history
    python -m repro search \
        --workload efficientnet-b0 --trials 16 --batch-size 4 --seed 0 \
        --executor remote --endpoints "$url" \
        --output "$SMOKE_DIR/remote-search.json" --history --progress

    python - "$SMOKE_DIR/serial-search.json" "$SMOKE_DIR/remote-search.json" \
        "$SMOKE_DIR/remote-runtime-stats.json" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1]))
remote = json.load(open(sys.argv[2]))
for key in ("proposals", "history", "best_score_curve", "best_score"):
    if serial.get(key) != remote.get(key):
        raise SystemExit(f"remote run diverged from serial run on {key!r}")
stats = remote.get("runtime") or {}
json.dump(stats, open(sys.argv[3], "w"), indent=2)
print("remote == serial bit-for-bit over", len(remote.get("history") or []), "trials")
print("remote runtime stats:",
      {k: v for k, v in stats.items() if k.startswith("remote_")})
PY

    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - RETURN
}

# --------------------------------------------------------------------------
# 6. Telemetry smoke: traced search -> valid Chrome trace + `repro trace`
#    summary; background `repro serve` -> /metrics Prometheus exposition.
# --------------------------------------------------------------------------
smoke_telemetry() {
    log "telemetry smoke: traced search, trace summary, /metrics exposition"
    python -m repro search \
        --workload efficientnet-b0 --trials 8 --batch-size 4 --seed 0 \
        --trace "$SMOKE_DIR/search-trace.json"

    python - "$SMOKE_DIR/search-trace.json" <<'PY'
import json, sys
payload = json.load(open(sys.argv[1]))
events = payload["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no complete (ph=X) span events in the trace"
for event in spans:
    assert event["ts"] >= 0 and event["dur"] >= 0, event
    assert "trace_id" in event["args"] and "span_id" in event["args"], event
names = {e["name"] for e in spans}
for expected in ("search", "trial", "simulate"):
    assert expected in names, f"missing {expected!r} spans; have {sorted(names)}"
print("valid Chrome trace:", len(spans), "spans,", len(names), "span names")
PY

    python -m repro trace "$SMOKE_DIR/search-trace.json" --top 5

    local serve_log="$SMOKE_DIR/telemetry-serve.log"
    python -m repro serve --port 0 --workers 1 >"$serve_log" 2>&1 &
    local serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true' RETURN

    local url=""
    for _ in $(seq 1 60); do
        url=$(sed -n 's/.*\(http:\/\/[0-9.]*:[0-9]*\).*/\1/p' "$serve_log" | head -1)
        if [ -n "$url" ] && python - "$url" <<'PY'
import json, sys, urllib.request
with urllib.request.urlopen(sys.argv[1] + "/health", timeout=2) as r:
    assert json.loads(r.read())["status"] == "ok"
PY
        then break; fi
        url=""
        sleep 0.5
    done
    [ -n "$url" ] || { echo "repro serve never became healthy"; cat "$serve_log"; exit 1; }
    echo "service healthy at $url"

    python - "$url" <<'PY'
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1] + "/metrics", timeout=5) as reply:
    content_type = reply.headers["Content-Type"]
    body = reply.read().decode()
assert content_type.startswith("text/plain"), content_type
assert "# TYPE repro_service_requests_total counter" in body, body
assert "repro_service_uptime_seconds" in body, body
samples = 0
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    name_part, value = line.rsplit(" ", 1)
    assert name_part, line
    float(value)  # every sample value must parse
    samples += 1
print("valid Prometheus exposition:", samples, "samples")
PY

    kill "$serve_pid" 2>/dev/null || true
    wait "$serve_pid" 2>/dev/null || true
    trap - RETURN
}

# --------------------------------------------------------------------------
# 7. Chaos smoke: seeded fault injection (worker SIGKILL + torn cache write)
#    must leave the history bit-for-bit equal to a clean run, and a search
#    SIGKILLed mid-run must reproduce the uninterrupted history on --resume.
# --------------------------------------------------------------------------
smoke_chaos() {
    log "chaos smoke: fault-injected history equivalence"
    local common=(--workload efficientnet-b0 --trials 16 --batch-size 4 --seed 0 --history)
    python -m repro search "${common[@]}" \
        --output "$SMOKE_DIR/chaos-clean.json"
    python -m repro search "${common[@]}" \
        --workers 2 \
        --inject-faults "worker-crash:n=1,torn-write:n=1" --fault-seed 7 \
        --cache "$SMOKE_DIR/chaos-trials.jsonl" \
        --output "$SMOKE_DIR/chaos-faulted.json"

    python - "$SMOKE_DIR/chaos-clean.json" "$SMOKE_DIR/chaos-faulted.json" \
        "$SMOKE_DIR/chaos-trials.jsonl" <<'PY'
import json, sys
clean = json.load(open(sys.argv[1]))
faulted = json.load(open(sys.argv[2]))
for key in ("proposals", "history", "best_score_curve", "best_score"):
    if clean.get(key) != faulted.get(key):
        raise SystemExit(f"fault-injected run diverged from the clean run on {key!r}")
stats = faulted.get("runtime") or {}
assert stats.get("faults_injected", 0) >= 2, stats
assert stats.get("worker_restarts", 0) >= 1, stats
from repro.runtime.cache import TrialCache
reopened = TrialCache(sys.argv[3])
assert reopened.stats.corrupt_records == 1, vars(reopened.stats)
print("fault-injected == clean bit-for-bit over",
      len(faulted.get("history") or []), "trials;",
      stats.get("faults_injected"), "faults injected,",
      stats.get("worker_restarts"), "worker restart(s),",
      reopened.stats.corrupt_records, "torn record quarantined")
PY

    log "chaos smoke: SIGKILL mid-run + --resume round-trip"
    local ckpt="$SMOKE_DIR/chaos-resume.ckpt"
    rm -f "$ckpt"
    python -m repro search "${common[@]}" \
        --checkpoint "$ckpt" --checkpoint-every 4 \
        --output "$SMOKE_DIR/chaos-interrupted.json" &
    local search_pid=$!
    for _ in $(seq 1 120); do
        [ -f "$ckpt" ] && break
        kill -0 "$search_pid" 2>/dev/null || break
        sleep 0.25
    done
    # SIGKILL, not TERM: no cleanup handlers, exactly like an OOM kill.
    kill -9 "$search_pid" 2>/dev/null || true
    wait "$search_pid" 2>/dev/null || true
    [ -f "$ckpt" ] || { echo "no checkpoint was written before the kill"; exit 1; }

    python -m repro search "${common[@]}" \
        --resume "$ckpt" --checkpoint-every 4 \
        --output "$SMOKE_DIR/chaos-resumed.json"

    python - "$SMOKE_DIR/chaos-clean.json" "$SMOKE_DIR/chaos-resumed.json" <<'PY'
import json, sys
clean = json.load(open(sys.argv[1]))
resumed = json.load(open(sys.argv[2]))
for key in ("proposals", "history", "best_score_curve", "best_score"):
    if clean.get(key) != resumed.get(key):
        raise SystemExit(f"resumed run diverged from the uninterrupted run on {key!r}")
print("kill -9 + --resume reproduced the uninterrupted history bit-for-bit over",
      len(resumed.get("history") or []), "trials")
PY
}

# --------------------------------------------------------------------------
# 8. Cache-tier smoke: a search writes the persistent region store, a cold
#    process warm-loads it (every region from disk, none recomputed), and a
#    2-worker run attaches the parent-published shared-memory segment — all
#    with histories bit-for-bit equal to the private-cache baseline.
# --------------------------------------------------------------------------
smoke_cache_tier() {
    log "cache-tier smoke: region store warm-load + shared-memory equivalence"
    local common=(--workload efficientnet-b0 --trials 12 --batch-size 4 --seed 0 --history)
    local store="$SMOKE_DIR/region-store.jsonl"
    rm -f "$store"
    python -m repro search "${common[@]}" \
        --output "$SMOKE_DIR/cache-private.json"
    python -m repro search "${common[@]}" \
        --engine "graph-batched:region_store=$store" \
        --output "$SMOKE_DIR/cache-store-cold.json"
    [ -s "$store" ] || { echo "region store was never written"; exit 1; }
    # Fresh processes: one serial warm-load, one 2-worker shared-memory run.
    python -m repro search "${common[@]}" \
        --engine "graph-batched:region_store=$store" \
        --output "$SMOKE_DIR/cache-store-warm.json"
    python -m repro search "${common[@]}" \
        --workers 2 \
        --engine "graph-batched:region_store=$store" \
        --output "$SMOKE_DIR/cache-shared.json"

    python - "$SMOKE_DIR/cache-private.json" "$SMOKE_DIR/cache-store-cold.json" \
        "$SMOKE_DIR/cache-store-warm.json" "$SMOKE_DIR/cache-shared.json" <<'PY'
import json, sys
private = json.load(open(sys.argv[1]))
for path in sys.argv[2:]:
    other = json.load(open(path))
    for key in ("proposals", "history", "best_score_curve", "best_score"):
        if private.get(key) != other.get(key):
            raise SystemExit(f"{path} diverged from the private-cache run on {key!r}")
warm = json.load(open(sys.argv[3]))["runtime"]
assert warm["region_cache_disk_hits"] > 0, warm
assert warm["region_cache_misses"] == 0, warm
shared = json.load(open(sys.argv[4]))["runtime"]
assert shared["shared_cache_attached"] >= 1, shared
assert shared["shared_cache_entries"] > 0, shared
print("store + shared-memory == private bit-for-bit over",
      len(private.get("history") or []), "trials;",
      warm["region_cache_disk_hits"], "warm disk hits,",
      shared["shared_cache_attached"], "worker(s) on the shared segment")
PY
}

# --------------------------------------------------------------------------
# Coverage job: ratcheted floor + drift check.  The floor lives in ci.yml
# (COV_FLOOR env of the coverage job); raise it as coverage grows, never
# lower it.  The drift check fails the job when the floor lags measured
# coverage by more than 5 points — i.e. when someone forgot the ratchet.
# --------------------------------------------------------------------------
smoke_coverage() {
    log "coverage: branch coverage with ratcheted floor"
    if ! python -c "import pytest_cov" 2>/dev/null; then
        echo "pytest-cov is not installed; skipping the coverage smoke"
        return 0
    fi
    local floor="${COV_FLOOR:-$(sed -n 's/.*COV_FLOOR: "\([0-9]*\)".*/\1/p' .github/workflows/ci.yml | head -1)}"
    [ -n "$floor" ] || { echo "no COV_FLOOR found (env or ci.yml)"; exit 1; }
    local report="$SMOKE_DIR/coverage.txt"
    python -m pytest -q \
        --cov=repro --cov-branch \
        --cov-report=term-missing:skip-covered \
        --cov-fail-under="$floor" | tee "$report"
    local measured
    measured=$(grep -E '^TOTAL' "$report" | awk '{print $NF}' | tr -d '%' | cut -d. -f1)
    echo "coverage floor: ${floor}%, measured: ${measured}%"
    if [ "$((measured - floor))" -gt 5 ]; then
        echo "ratchet drift: measured coverage (${measured}%) exceeds the floor" \
             "(${floor}%) by more than 5 points — raise COV_FLOOR in ci.yml"
        exit 1
    fi
}

# --------------------------------------------------------------------------
case "${1:-all}" in
    search)       smoke_search ;;
    sweep)        smoke_sweep ;;
    profile)      smoke_profile ;;
    mapper-equiv) smoke_mapper_equiv ;;
    backend-equiv) smoke_backend_equiv ;;
    bench)        smoke_bench ;;
    remote)       smoke_remote ;;
    telemetry)    smoke_telemetry ;;
    chaos)        smoke_chaos ;;
    cache-tier)   smoke_cache_tier ;;
    coverage)     smoke_coverage ;;
    all)
        smoke_search
        smoke_sweep
        smoke_profile
        smoke_mapper_equiv
        smoke_backend_equiv
        smoke_bench
        smoke_remote
        smoke_telemetry
        smoke_chaos
        smoke_cache_tier
        log "all smokes passed; artifacts in $SMOKE_DIR"
        ;;
    *)
        echo "usage: $0 [all|search|sweep|profile|mapper-equiv|backend-equiv|bench|remote|telemetry|chaos|cache-tier|coverage]" >&2
        exit 2
        ;;
esac
